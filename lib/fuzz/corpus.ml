open Pcc_scenario

type repro = { oracle : string; detail : string; scenario : Scenario.t }

let header = "pcc-fuzz-repro v1"

(* FNV-1a, 64-bit: a stable content hash with no dependencies. *)
let fnv1a s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    s;
  !h

let oracle_slug oracle =
  String.map
    (fun c ->
      match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' -> c | _ -> '-')
    oracle

let filename r =
  let blob = Scenario.to_string r.scenario in
  Printf.sprintf "fuzz-%s-%08Lx.repro" (oracle_slug r.oracle)
    (Int64.logand (fnv1a blob) 0xffffffffL)

let hex_encode s =
  let b = Buffer.create (2 * String.length s) in
  String.iteri
    (fun i c ->
      Buffer.add_string b (Printf.sprintf "%02x" (Char.code c));
      if i mod 32 = 31 then Buffer.add_char b '\n')
    s;
  let out = Buffer.contents b in
  if String.length out > 0 && out.[String.length out - 1] <> '\n' then
    out ^ "\n"
  else out

let hex_decode s =
  let digits = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> Buffer.add_char digits c
      | ' ' | '\n' | '\t' | '\r' -> ()
      | c -> failwith (Printf.sprintf "repro: bad hex character %C" c))
    s;
  let d = Buffer.contents digits in
  if String.length d mod 2 <> 0 then failwith "repro: odd hex length";
  String.init
    (String.length d / 2)
    (fun i -> Char.chr (int_of_string ("0x" ^ String.sub d (2 * i) 2)))

let one_line s = String.map (function '\n' | '\r' -> ' ' | c -> c) s

let to_string r =
  let b = Buffer.create 512 in
  Buffer.add_string b (header ^ "\n");
  Buffer.add_string b (Printf.sprintf "# oracle: %s\n" (one_line r.oracle));
  Buffer.add_string b (Printf.sprintf "# detail: %s\n" (one_line r.detail));
  Buffer.add_string b
    (Printf.sprintf "# scenario: %s\n" (one_line (Scenario.describe r.scenario)));
  Buffer.add_string b
    (Printf.sprintf "# replay: pcc_sim fuzz --replay %s\n" (filename r));
  Buffer.add_string b (hex_encode (Scenario.to_string r.scenario));
  Buffer.contents b

let of_string text =
  let lines = String.split_on_char '\n' text in
  match lines with
  | first :: rest when String.trim first = header ->
    let oracle = ref "" and detail = ref "" in
    let hex = Buffer.create 256 in
    List.iter
      (fun line ->
        let line = String.trim line in
        if line = "" then ()
        else if String.length line > 0 && line.[0] = '#' then begin
          let strip_prefix p =
            if String.length line >= String.length p
               && String.sub line 0 (String.length p) = p
            then Some (String.sub line (String.length p)
                         (String.length line - String.length p))
            else None
          in
          match strip_prefix "# oracle: " with
          | Some v -> oracle := v
          | None -> (
            match strip_prefix "# detail: " with
            | Some v -> detail := v
            | None -> (* scenario/replay headers are informational *) ())
        end
        else Buffer.add_string hex line)
      rest;
    if !oracle = "" then failwith "repro: missing '# oracle:' header";
    let scenario = Scenario.of_string (hex_decode (Buffer.contents hex)) in
    { oracle = !oracle; detail = !detail; scenario }
  | _ -> failwith "repro: missing 'pcc-fuzz-repro v1' header line"

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Sys.mkdir dir 0o755 with Sys_error _ when Sys.file_exists dir -> ()
  end

let save ~dir r =
  mkdir_p dir;
  let path = Filename.concat dir (filename r) in
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string r));
  path

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))

let load_dir dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".repro")
    |> List.sort String.compare
    |> List.map (fun f ->
           let path = Filename.concat dir f in
           (path, load path))
