(** The fuzz loop: generate, test, shrink, bank.

    Each run derives its own seed from the master seed
    ({!Pcc_experiments.Runner.derive_seed}), draws a scenario with
    {!Pcc_scenario.Scenario.generate} and runs the {!Oracle} suite. A
    failure is minimized by {!Shrink.minimize} (under the same oracle)
    and written to the corpus directory as a {!Corpus} repro whose
    header carries the exact replay command.

    Everything — generation, oracle order, shrinking, log lines — is a
    pure function of [(seed, runs)] plus the synthetic hook, so two
    invocations with the same arguments produce byte-identical output;
    that is the CI determinism gate. *)

type failure_report = {
  run : int;  (** Run index within the campaign. *)
  failure : Oracle.failure;
  shrunk : Pcc_scenario.Scenario.t;
  shrink_checks : int;  (** Oracle invocations the minimizer spent. *)
  repro_path : string option;  (** Where the repro was banked, if a
                                   corpus directory was given. *)
}

type summary = { runs : int; failed : failure_report list }

val fuzz :
  ?synth:(Pcc_scenario.Scenario.t -> string option) ->
  ?deep_every:int ->
  ?shard_every:int ->
  ?chaos_every:int ->
  ?shards:int ->
  ?shrink_budget:int ->
  ?corpus_dir:string ->
  ?menu:string list ->
  ?log:(string -> unit) ->
  runs:int ->
  seed:int ->
  unit ->
  summary
(** Run a campaign. [menu] restricts generated flows to a subset of
    {!Pcc_scenario.Transport.all_names} (the nightly controllers axis
    fuzzes just the PCC family); default is the full menu.
    [deep_every] (default 8) enables the expensive
    supervisor/checkpoint differentials on every Nth run (0 disables
    them); shrinking a deep-oracle failure re-enables them for the
    minimizer's checks. [shard_every] (default 4) likewise enables the
    sharded differential ({!Oracle.shard_check} at [shards], default 4)
    on every Nth run; shrinking a shard-oracle failure keeps it enabled
    and additionally rejects shrink candidates whose partition collapses
    onto a single shard ({!Pcc_scenario.Scenario.shard_preview}), so the
    minimized repro still exercises the cross-shard protocol.
    [chaos_every] (default 4) likewise enables the chaos-ladder
    differential ({!Oracle.chaos_ladder_check}) on every Nth run; a
    chaos-ladder failure shrinks under the same shard-collapse
    rejection. [log]
    (default silent) receives one line per failure and a closing summary
    line. *)

val replay :
  ?synth:(Pcc_scenario.Scenario.t -> string option) ->
  ?shards:int ->
  string ->
  (unit, Oracle.failure) result
(** Replay one repro file under the full oracle suite (deep and sharded
    checks included). [Ok ()] means every oracle now passes — the state
    a committed, fixed regression should be in. *)

val replay_dir :
  ?synth:(Pcc_scenario.Scenario.t -> string option) ->
  ?shards:int ->
  ?log:(string -> unit) ->
  string ->
  (string * Oracle.failure) list
(** Replay every repro in a corpus directory; returns the files that
    still fail. An empty list is a green corpus. *)

val synth_of_env : unit -> (Pcc_scenario.Scenario.t -> string option) option
(** The CI fault-injection hook: parse [PCC_FUZZ_SYNTH] into a
    predicate. Specs: ["always"], or [<field><op><n>] with field one of
    [flows]/[links]/[faults]/[cross], op one of [>=]/[<=]/[=] — e.g.
    ["flows>=2"]. The predicate depends only on the scenario value, so
    a shrunken repro still fails under the same spec and replays green
    once the variable is unset.
    @raise Invalid_argument on a malformed spec. *)
