(** Delta-debugging minimizer for failing scenarios.

    Given a scenario on which some oracle failed, search for a smaller
    scenario that fails the {e same} oracle — the repro a human actually
    wants to read. Transformation passes, largest reductions first:

    - drop flows (halves, then one at a time);
    - drop fault events, cross-traffic sources and the dynamics driver;
    - halve the duration;
    - drop links no flow route, cross source, dynamics driver or
      partition fault references (remapping the surviving indices);
    - per-flow simplifications: clear [stop_at]/[size]/[rev_route],
      zero [start_at]/[extra_rtt];
    - per-link simplifications: zero [loss]/[jitter], revert the queue
      discipline to droptail.

    Each accepted step strictly shrinks a well-founded size measure, so
    minimization terminates even without the check budget. Candidates
    that fail a {e different} oracle (including [build] rejections of a
    now-invalid structure) are not accepted. *)

val size : Pcc_scenario.Scenario.t -> int
(** The measure minimization decreases — components (flows, links,
    fault/cross entries, optional features, nonzero knobs) weighted so
    structural drops dominate value simplifications. *)

val minimize :
  ?budget:int ->
  check:(Pcc_scenario.Scenario.t -> Oracle.failure option) ->
  oracle:string ->
  Pcc_scenario.Scenario.t ->
  Pcc_scenario.Scenario.t * int
(** [minimize ~check ~oracle s] greedily applies the passes until none
    makes progress or [budget] (default 300) invocations of [check] are
    spent; returns the minimized scenario and the number of checks used.
    [s] itself is assumed to fail [oracle] and is returned unchanged if
    nothing smaller reproduces it. *)
