(** Self-contained repro files and the regression corpus.

    A repro is one text file carrying everything needed to re-run a
    scenario that once failed an oracle: commented headers (the failing
    oracle, its detail, a human-readable scenario summary and the exact
    replay command) followed by the hex-encoded {!Pcc_scenario.Scenario}
    binary encoding. Files land in a corpus directory —
    [test/corpus/] for committed regressions, which [dune runtest]
    replays — and are stable, diffable and greppable. *)

type repro = {
  oracle : string;  (** Oracle that failed when the repro was captured. *)
  detail : string;
  scenario : Pcc_scenario.Scenario.t;
}

val filename : repro -> string
(** Content-addressed name, [fuzz-<oracle>-<hash>.repro]: an FNV-1a hash
    of the scenario encoding, so re-finding the same minimized scenario
    never duplicates a corpus entry. *)

val to_string : repro -> string
val of_string : string -> repro
(** @raise Failure on a malformed file (bad header, bad hex) and
    [Pcc_sim.Persist.Corrupt] on a corrupt scenario blob. *)

val save : dir:string -> repro -> string
(** Write the repro into [dir] (created if missing) under {!filename};
    returns the path written. *)

val load : string -> repro
(** Read one repro file. *)

val load_dir : string -> (string * repro) list
(** Every [*.repro] file in the directory, sorted by name; [[]] if the
    directory does not exist. *)
