open Pcc_sim
open Pcc_scenario
open Pcc_experiments

type failure = { oracle : string; detail : string }
type stats = { events : int; digest : string }

(* Event budget per run: generated scenarios stay well under a million
   events, so hitting this means the simulation ran away. *)
let max_events = 10_000_000

let digest_gen ~events ~now topo =
  let b = Buffer.create 256 in
  Array.iteri
    (fun i (f : Topology.built_flow) ->
      Buffer.add_string b
        (Printf.sprintf "f%d g=%d s=%d a=%d srtt=%h rate=%h fct=%s\n" i
           (Topology.goodput_bytes f)
           (f.Topology.sender.Pcc_net.Sender.sent_pkts ())
           (f.Topology.sender.Pcc_net.Sender.acked_bytes ())
           (f.Topology.sender.Pcc_net.Sender.srtt ())
           (f.Topology.sender.Pcc_net.Sender.rate_estimate ())
           (match f.Topology.fct with
           | None -> "-"
           | Some v -> Printf.sprintf "%h" v)))
    (Topology.flows topo);
  Buffer.add_string b (Printf.sprintf "events=%d now=%h" events now);
  Buffer.contents b

let digest engine topo =
  digest_gen ~events:(Engine.executed engine) ~now:(Engine.now engine) topo

(* Post-run sweeps over sender/receiver counters: properties that must
   hold for every valid scenario, whatever the network did. *)
let semantic_failure engine (s : Scenario.t) topo =
  let fail oracle fmt = Printf.ksprintf (fun detail -> Some { oracle; detail }) fmt in
  let now = Engine.now engine in
  if now < 0. || now > s.Scenario.duration +. 1e-9 then
    fail "clock" "engine clock %.6f outside [0, %.2f]" now s.Scenario.duration
  else begin
    let flows = Topology.flows topo in
    let defs = Array.of_list s.Scenario.flows in
    let result = ref None in
    Array.iteri
      (fun i (f : Topology.built_flow) ->
        if !result = None then begin
          let sender = f.Topology.sender in
          let goodput = Topology.goodput_bytes f in
          let sent = sender.Pcc_net.Sender.sent_pkts () in
          let acked = sender.Pcc_net.Sender.acked_bytes () in
          let rate = sender.Pcc_net.Sender.rate_estimate () in
          let srtt = sender.Pcc_net.Sender.srtt () in
          let def = defs.(i) in
          if goodput > sent * Units.mss then
            result :=
              fail "conservation"
                "flow %d delivered %d bytes from only %d sent packets" i
                goodput sent
          else if acked > sent * Units.mss then
            result :=
              fail "conservation" "flow %d acked %d bytes from %d sent packets"
                i acked sent
          else if (not (Float.is_finite rate)) || rate < 0. then
            result := fail "rate" "flow %d rate estimate %h" i rate
          else if (not (Float.is_finite srtt)) || srtt < 0. then
            result := fail "rate" "flow %d srtt %h" i srtt
          else begin
            match (def.Scenario.size, f.Topology.fct) with
            | Some sz, _ when goodput > sz ->
              result :=
                fail "conservation" "flow %d delivered %d of a %d-byte transfer"
                  i goodput sz
            | Some sz, Some fct ->
              if fct <= 0. || fct > s.Scenario.duration then
                result := fail "fct" "flow %d fct %h outside (0, %.2f]" i fct
                    s.Scenario.duration
              else if goodput <> sz then
                result :=
                  fail "fct"
                    "flow %d completed (fct %.4f) but delivered %d of %d bytes"
                    i fct goodput sz
            | _ -> ()
          end
        end)
      flows;
    !result
  end

(* Run [f ()] (build + engine run) converting every failure mode of the
   simulation into a failure value. [violations] collects invariant
   sweeps. *)
let guarded_run engine ~duration ~violations build_fn =
  match build_fn () with
  | exception Invalid_argument m -> Error { oracle = "build"; detail = m }
  | exception exn ->
    Error { oracle = "build"; detail = Printexc.to_string exn }
  | (topo : Topology.t), (stop : unit -> unit) -> (
    let inv =
      Invariant.attach_topology
        ~on_violation:(fun v -> violations := v :: !violations)
        topo
    in
    let finish () =
      stop ();
      Invariant.check_now inv;
      Invariant.stop inv
    in
    match Engine.run ~until:duration ~max_events engine with
    | () ->
      finish ();
      Ok topo
    | exception Engine.Livelock { time; events; kind } ->
      Error
        {
          oracle = "livelock";
          detail =
            Printf.sprintf "%s at t=%.6f after %d events"
              (match kind with
              | Engine.Stall -> "stall"
              | Engine.Budget -> "event budget exhausted")
              time events;
        }
    | exception Engine.Event_error { time; exn } ->
      Error
        {
          oracle = "crash";
          detail = Printf.sprintf "t=%.6f %s" time (Printexc.to_string exn);
        }
    | exception exn -> Error { oracle = "crash"; detail = Printexc.to_string exn })

let first_violation violations =
  match List.rev violations with
  | [] -> None
  | v :: _ ->
    Some
      {
        oracle = "invariant:" ^ v.Invariant.check;
        detail = Printf.sprintf "t=%.6f %s" v.Invariant.time v.Invariant.detail;
      }

let run_once ?scheduler (s : Scenario.t) : (stats, failure) result =
  let engine = Engine.create ?scheduler () in
  let violations = ref [] in
  match
    guarded_run engine ~duration:s.Scenario.duration ~violations (fun () ->
        let built = Scenario.build engine s in
        (built.Scenario.topo, built.Scenario.stop))
  with
  | Error f -> Error f
  | Ok topo -> (
    match first_violation !violations with
    | Some f -> Error f
    | None -> (
      match semantic_failure engine s topo with
      | Some f -> Error f
      | None ->
        Ok { events = Engine.executed engine; digest = digest engine topo }))

(* --------------------------------------------------------------- *)
(* Wrapper differentials: scenarios expressible through the flat
   [Path] / [Multihop] builders must run bit-identically through them
   (the wrappers preserve Topology's RNG split order by construction —
   PR 3's contract — so any divergence is a wrapper bug). *)

let path_applicable (s : Scenario.t) =
  s.Scenario.cross = []
  && s.Scenario.dynamics = None
  && (match s.Scenario.links with
     | [ l ] -> l.Scenario.src = 0 && l.Scenario.dst = 1
     | _ -> false)
  && List.for_all
       (fun (f : Scenario.flow) ->
         f.Scenario.route = [ 0; 1 ]
         && f.Scenario.rev_route = None
         && f.Scenario.rev_lossy)
       s.Scenario.flows

let rec consecutive_from a = function
  | [] -> true
  | x :: rest -> x = a && consecutive_from (a + 1) rest

let multihop_applicable (s : Scenario.t) =
  s.Scenario.cross = []
  && s.Scenario.dynamics = None
  && List.for_all2
       (fun i (l : Scenario.link) ->
         l.Scenario.src = i
         && l.Scenario.dst = i + 1
         && l.Scenario.queue = Topology.Droptail
         && l.Scenario.jitter = 0.)
       (List.init (List.length s.Scenario.links) Fun.id)
       s.Scenario.links
  && List.for_all
       (fun (f : Scenario.flow) ->
         f.Scenario.rev_route = None
         && (not f.Scenario.rev_lossy)
         && f.Scenario.stop_at = None
         && f.Scenario.extra_rtt = 0.
         && (match f.Scenario.route with
            | a :: _ :: _ -> consecutive_from a f.Scenario.route
            | _ -> false))
       s.Scenario.flows

let transport_exn (f : Scenario.flow) =
  match Transport.of_name f.Scenario.transport with
  | Ok t -> t
  | Error m -> invalid_arg m

(* Scenario.build's first RNG split is the topology stream; replaying
   just that split gives the wrapper the identical stream. *)
let scenario_topo_rng (s : Scenario.t) =
  let rng = Rng.create s.Scenario.seed in
  Rng.split rng

let wrapper_digest (s : Scenario.t) ~name build_fn =
  let engine = Engine.create () in
  let violations = ref [] in
  match
    guarded_run engine ~duration:s.Scenario.duration ~violations (fun () ->
        build_fn engine)
  with
  | Error f ->
    Error
      {
        oracle = name;
        detail = "wrapper run failed: " ^ f.oracle ^ ": " ^ f.detail;
      }
  | Ok topo -> (
    match first_violation !violations with
    | Some f ->
      Error
        {
          oracle = name;
          detail = "wrapper run violated " ^ f.oracle ^ ": " ^ f.detail;
        }
    | None -> Ok (digest engine topo))

(* The wrapper runs replicate [Scenario.build]'s fault injection (the
   applicability predicates already exclude cross traffic and dynamics,
   whose RNG splits therefore never get consumed in the base run
   either... they do — build splits unconditionally — but only the
   topology stream feeds simulated events, so the digests still agree). *)
let run_path (s : Scenario.t) engine =
  let topo_rng = scenario_topo_rng s in
  let l = List.hd s.Scenario.links in
  let flows =
    List.map
      (fun (f : Scenario.flow) ->
        Path.flow ~start_at:f.Scenario.start_at ?stop_at:f.Scenario.stop_at
          ?size:f.Scenario.size ~extra_rtt:f.Scenario.extra_rtt
          (transport_exn f))
      s.Scenario.flows
  in
  let path =
    Path.build engine ~rng:topo_rng ~bandwidth:l.Scenario.bandwidth
      ~rtt:(2. *. l.Scenario.delay) ~buffer:l.Scenario.buffer
      ~queue:l.Scenario.queue ~loss:l.Scenario.loss ~jitter:l.Scenario.jitter
      ~flows ()
  in
  let topo = Path.topology path in
  if s.Scenario.faults <> [] then
    Fault.inject (Fault.target_of_topology topo) s.Scenario.faults;
  (topo, fun () -> ())

let run_multihop (s : Scenario.t) engine =
  let topo_rng = scenario_topo_rng s in
  let hops =
    List.map
      (fun (l : Scenario.link) ->
        Multihop.hop ~delay:l.Scenario.delay ~buffer:l.Scenario.buffer
          ~loss:l.Scenario.loss ~bandwidth:l.Scenario.bandwidth ())
      s.Scenario.links
  in
  let flows =
    List.map
      (fun (f : Scenario.flow) ->
        let enter = List.hd f.Scenario.route in
        let exit = List.nth f.Scenario.route (List.length f.Scenario.route - 1) in
        Multihop.flow ~start_at:f.Scenario.start_at ?size:f.Scenario.size ~enter
          ~exit (transport_exn f))
      s.Scenario.flows
  in
  let mh = Multihop.build engine ~rng:topo_rng ~hops ~flows () in
  let topo = Multihop.topology mh in
  if s.Scenario.faults <> [] then
    Fault.inject (Fault.target_of_topology topo) s.Scenario.faults;
  (topo, fun () -> ())

let wrapper_check (s : Scenario.t) (base : stats) =
  let compare_digest name build_fn =
    match wrapper_digest s ~name build_fn with
    | Error f -> Some f
    | Ok d when d <> base.digest ->
      Some
        { oracle = name; detail = "wrapper digest differs from topology run" }
    | Ok _ -> None
    | exception exn -> Some { oracle = name; detail = Printexc.to_string exn }
  in
  if path_applicable s then compare_digest "wrapper-path" (run_path s)
  else if multihop_applicable s then
    compare_digest "wrapper-multihop" (run_multihop s)
  else None

(* --------------------------------------------------------------- *)
(* Sharded differential: rebuild the scenario on a 1-shard and an
   N-shard hub and require bit-identical digests. Hub runs attach no
   invariant checker (its sweeps are engine events, which would make
   event counts incomparable between the two hub runs and the scheduled
   probe cadence shard-dependent), so the comparison is hub-vs-hub, not
   hub-vs-monolithic; the monolithic digest is covered by the oracles
   above and the hub protocol's own determinism is what this one
   polices. *)

let livelock_detail ~time ~events kind =
  Printf.sprintf "%s at t=%.6f after %d events"
    (match kind with
    | Engine.Stall -> "stall"
    | Engine.Budget -> "event budget exhausted")
    time events

let run_hub ~shards (s : Scenario.t) : (stats, failure) result =
  let hub = Shard.create ~shards () in
  match Scenario.build_sharded hub s with
  | exception Invalid_argument m -> Error { oracle = "shard-build"; detail = m }
  | exception exn ->
    Error { oracle = "shard-build"; detail = Printexc.to_string exn }
  | built -> (
    match Shard.run ~max_events hub ~until:s.Scenario.duration with
    | () ->
      built.Scenario.stop ();
      let events = Shard.executed hub in
      Ok
        {
          events;
          digest =
            digest_gen ~events
              ~now:(Engine.now (Shard.engine hub 0))
              built.Scenario.topo;
        }
    | exception Engine.Livelock { time; events; kind } ->
      (* The global [max_events] budget propagates unwrapped. *)
      Error
        {
          oracle = "shard-livelock";
          detail = livelock_detail ~time ~events kind;
        }
    | exception
        Shard.Lane_failure
          { origin = Engine.Livelock { time; events; kind }; _ } ->
      (* A stall inside one shard's window arrives wrapped since the
         hub's containment abort; classify it the same way. *)
      Error
        {
          oracle = "shard-livelock";
          detail = livelock_detail ~time ~events kind;
        }
    | exception exn ->
      Error { oracle = "shard-crash"; detail = Printexc.to_string exn })

let shard_check ~shards (s : Scenario.t) =
  if shards < 2 || not (Scenario.shard_applicable s) then None
  else
    match (run_hub ~shards:1 s, run_hub ~shards s) with
    | Error f, _ ->
      Some
        {
          oracle = "shard-differential";
          detail = "1-shard hub run failed: " ^ f.oracle ^ ": " ^ f.detail;
        }
    | _, Error f ->
      Some
        {
          oracle = "shard-differential";
          detail =
            Printf.sprintf "%d-shard hub run failed: %s: %s" shards f.oracle
              f.detail;
        }
    | Ok one, Ok many ->
      if not (String.equal one.digest many.digest) then
        Some
          {
            oracle = "shard-differential";
            detail =
              Printf.sprintf
                "%d-shard digest differs from the 1-shard hub run" shards;
          }
      else None

(* --------------------------------------------------------------- *)
(* Chaos-ladder differential: inject a deterministic lane crash into
   the N-shard hub run and require the degradation ladder to finish
   with a digest bit-identical to a clean 1-shard run — the property
   that makes degraded results trustworthy. The crash targets shard 1
   at lifetime round 2, so it fires at every rung wider than one shard
   and the ladder must walk all the way down to sequential. *)

let chaos_spec = { Shard.crash = Some (1, 2); wedge = None }

(* Unlike [run_hub], lets [Shard.Lane_failure] escape so the ladder can
   catch it; everything else is converted to a failure value. *)
let chaos_run ~shards (s : Scenario.t) =
  let hub = Shard.create ~shards () in
  Shard.configure ~chaos:chaos_spec hub;
  match Scenario.build_sharded hub s with
  | exception Invalid_argument m ->
    Error { oracle = "chaos-ladder"; detail = "build: " ^ m }
  | built ->
    Shard.run ~max_events hub ~until:s.Scenario.duration;
    built.Scenario.stop ();
    let events = Shard.executed hub in
    Ok
      (digest_gen ~events
         ~now:(Engine.now (Shard.engine hub 0))
         built.Scenario.topo)

let chaos_ladder_check ~shards (s : Scenario.t) =
  if shards < 2 || not (Scenario.shard_applicable s) then None
  else begin
    let fail detail = Some { oracle = "chaos-ladder"; detail } in
    match run_hub ~shards:1 s with
    | Error f ->
      fail
        (Printf.sprintf "clean 1-shard run failed: %s: %s" f.oracle f.detail)
    | Ok clean -> (
      match
        (* [enabled:true]: the oracle must exercise the ladder even when
           the process default was switched off. *)
        Degrade.run ~enabled:true
          ~plan:(Degrade.plan ~shards ())
          (fun (a : Degrade.attempt) -> chaos_run ~shards:a.Degrade.shards s)
      with
      | exception exn -> fail ("ladder failed: " ^ Printexc.to_string exn)
      | { Degrade.value = Error f; _ } -> fail (f.oracle ^ ": " ^ f.detail)
      | { Degrade.value = Ok digest; attempt; steps } ->
        if steps = [] then
          (* The scenario quiesced before round 2, so the injected crash
             never fired: vacuous, not a failure. *)
          None
        else if String.equal digest clean.digest then None
        else
          fail
            (Printf.sprintf
               "degraded run (%d step(s), finished at %d shard(s)) digest \
                differs from the clean 1-shard run"
               (List.length steps) attempt.Degrade.shards))
  end

(* --------------------------------------------------------------- *)
(* Deep differentials: cost real wall-clock (domain spawns, temp-file
   IO), so the fuzz loop only enables them on a subset of runs. *)

let supervisor_check (s : Scenario.t) (base : stats) =
  let digest_task () =
    match run_once s with
    | Ok st -> st.digest
    | Error f -> "fail:" ^ f.oracle ^ ":" ^ f.detail
  in
  let run_jobs jobs =
    let policy = { Supervisor.default_policy with Supervisor.jobs } in
    let results, report =
      Supervisor.run ~policy
        [
          {
            Supervisor.label = Printf.sprintf "fuzz-digest-j%d" jobs;
            seed = Some s.Scenario.seed;
            repro = None;
            run = digest_task;
          };
        ]
    in
    if Supervisor.failed report then Error (Supervisor.summary_line report)
    else
      match results with
      | [ Some d ] -> Ok d
      | _ -> Error "supervisor returned no result"
  in
  match (run_jobs 1, run_jobs 2) with
  | Error m, _ | _, Error m ->
    Some { oracle = "supervisor-jobs"; detail = "task failed: " ^ m }
  | Ok d1, Ok d2 ->
    if d1 <> base.digest then
      Some
        {
          oracle = "supervisor-jobs";
          detail = "jobs=1 digest differs from direct run";
        }
    else if d2 <> d1 then
      Some
        {
          oracle = "supervisor-jobs";
          detail = "jobs=2 digest differs from jobs=1";
        }
    else None

let checkpoint_check (s : Scenario.t) (base : stats) =
  let path = Filename.temp_file "pcc-fuzz" ".ckpt" in
  let fail detail = Some { oracle = "checkpoint"; detail } in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let names = [ "fuzz-digest" ] in
      let meta =
        { Checkpoint.seed = s.Scenario.seed; scale = s.Scenario.duration; names }
      in
      match
        let t = Checkpoint.create ~path meta in
        Checkpoint.append t ~name:"fuzz-digest" ~output:base.digest;
        Checkpoint.close t;
        Checkpoint.load ~path
      with
      | exception exn -> fail ("roundtrip raised " ^ Printexc.to_string exn)
      | meta', records ->
        if
          not
            (Checkpoint.matches meta' ~seed:s.Scenario.seed
               ~scale:s.Scenario.duration ~names)
        then fail "reloaded meta does not match the sweep"
        else if records <> [ ("fuzz-digest", base.digest) ] then
          fail "digest did not survive the checkpoint roundtrip"
        else None)

let deep_checks s base =
  match supervisor_check s base with
  | Some f -> Some f
  | None -> checkpoint_check s base

(* --------------------------------------------------------------- *)

let test ?(synth = fun _ -> None) ?(deep = true) ?(shard = false)
    ?(chaos = false) ?(shards = 4) (s : Scenario.t) =
  match run_once s with
  | Error f -> Some f
  | Ok base -> (
    match synth s with
    | Some detail -> Some { oracle = "synthetic"; detail }
    | None -> (
      (* Same-seed determinism: an independent second run must digest
         identically. *)
      match run_once s with
      | Error f ->
        Some
          {
            oracle = "determinism";
            detail = "second run failed: " ^ f.oracle ^ ": " ^ f.detail;
          }
      | Ok second when second.digest <> base.digest ->
        Some
          { oracle = "determinism"; detail = "same-seed digests differ" }
      | Ok _ -> (
        (* Scheduler differential: the engine's tie-break contract says
           heap and wheel dispatch in the same exact (time, seq) order,
           so the digest must be bit-identical under the backend the
           base run did NOT use. Campaigns under PCC_SCHEDULER=heap and
           =wheel therefore cross-check each other. *)
        let other =
          match Engine.default_scheduler () with
          | Engine.Heap -> Engine.Wheel
          | Engine.Wheel -> Engine.Heap
        in
        match run_once ~scheduler:other s with
        | Error f ->
          Some
            {
              oracle = "scheduler-differential";
              detail =
                Printf.sprintf "%s run failed: %s: %s"
                  (Engine.scheduler_name other)
                  f.oracle f.detail;
            }
        | Ok sw when sw.digest <> base.digest ->
          Some
            {
              oracle = "scheduler-differential";
              detail =
                Printf.sprintf "%s digest differs from %s run"
                  (Engine.scheduler_name other)
                  (Engine.scheduler_name (Engine.default_scheduler ()));
            }
        | Ok _ -> (
        (* Serialization roundtrip, structurally and behaviourally. *)
        match Scenario.of_string (Scenario.to_string s) with
        | exception Persist.Corrupt m ->
          Some { oracle = "persist-roundtrip"; detail = "decode failed: " ^ m }
        | s' when not (Scenario.equal s s') ->
          Some
            {
              oracle = "persist-roundtrip";
              detail = "decoded scenario differs structurally";
            }
        | s' -> (
          match run_once s' with
          | Error f ->
            Some
              {
                oracle = "persist-replay";
                detail = "decoded run failed: " ^ f.oracle ^ ": " ^ f.detail;
              }
          | Ok replay when replay.digest <> base.digest ->
            Some
              {
                oracle = "persist-replay";
                detail = "decoded scenario runs to a different digest";
              }
          | Ok _ -> (
            match wrapper_check s base with
            | Some f -> Some f
            | None -> (
              match
                if shard then shard_check ~shards s else None
              with
              | Some f -> Some f
              | None -> (
                match
                  if chaos then chaos_ladder_check ~shards s else None
                with
                | Some f -> Some f
                | None -> if deep then deep_checks s base else None))))))))
