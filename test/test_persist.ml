open Pcc_sim

(* Property-style roundtrip tests for Persist: random values from a
   seeded RNG, plus the adversarial corners (LEB128 group boundaries,
   min_int/max_int, non-finite floats, nesting, corrupt input). *)

let magic = "PCCTEST"

let roundtrip write read =
  let w = Persist.Writer.create ~magic ~version:1 in
  write w;
  let r = Persist.Reader.of_string ~magic (Persist.Writer.contents w) in
  let v = read r in
  Alcotest.(check bool) "all bytes consumed" true (Persist.Reader.at_end r);
  v

let test_int_boundaries () =
  (* Zig-zag LEB128 changes width at every 7-bit group boundary; check
     both sides of each, in both signs, plus the extremes. *)
  let boundaries =
    List.concat_map
      (fun bits ->
        let v = 1 lsl bits in
        [ v - 1; v; v + 1; -v + 1; -v; -v - 1 ])
      [ 6; 7; 13; 14; 20; 21; 27; 28; 34; 41; 48; 55; 61 ]
    @ [ 0; 1; -1; max_int; min_int; max_int - 1; min_int + 1 ]
  in
  List.iter
    (fun v ->
      let got = roundtrip (fun w -> Persist.Writer.int w v) Persist.Reader.int in
      Alcotest.(check int) (Printf.sprintf "int %d" v) v got)
    boundaries

let test_int_random () =
  let rng = Rng.create 101 in
  for _ = 1 to 1000 do
    (* Random magnitudes spread over every LEB128 width. *)
    let bits = Rng.int rng 62 in
    let v =
      let m = Rng.bits64 rng in
      Int64.to_int (Int64.shift_right m (63 - bits))
    in
    let got = roundtrip (fun w -> Persist.Writer.int w v) Persist.Reader.int in
    Alcotest.(check int) (Printf.sprintf "int %d" v) v got
  done

let test_int64_random () =
  let rng = Rng.create 102 in
  let cases =
    [ 0L; 1L; -1L; Int64.max_int; Int64.min_int ]
    @ List.init 500 (fun _ -> Rng.bits64 rng)
  in
  List.iter
    (fun v ->
      let got =
        roundtrip (fun w -> Persist.Writer.int64 w v) Persist.Reader.int64
      in
      Alcotest.(check int64) (Printf.sprintf "int64 %Ld" v) v got)
    cases

let test_float_exact_bits () =
  let rng = Rng.create 103 in
  let specials =
    [
      0.; -0.; 1.; -1.; Float.infinity; Float.neg_infinity; Float.nan;
      Float.max_float; Float.min_float; epsilon_float; 4.9e-324;
      (* subnormal *)
    ]
  in
  let randoms =
    List.init 500 (fun _ -> Int64.float_of_bits (Rng.bits64 rng))
  in
  List.iter
    (fun v ->
      let got =
        roundtrip (fun w -> Persist.Writer.float w v) Persist.Reader.float
      in
      (* Bit-pattern equality: NaN payloads and signed zeros included. *)
      Alcotest.(check int64)
        (Printf.sprintf "float %h" v)
        (Int64.bits_of_float v) (Int64.bits_of_float got))
    (specials @ randoms)

let random_string rng =
  String.init (Rng.int rng 64) (fun _ -> Char.chr (Rng.int rng 256))

let test_string_random () =
  let rng = Rng.create 104 in
  for _ = 1 to 200 do
    let v = random_string rng in
    let got =
      roundtrip (fun w -> Persist.Writer.string w v) Persist.Reader.string
    in
    Alcotest.(check string) "string" v got
  done

let test_nested_structures () =
  (* A random (int option * float list) list, the shape of real
     checkpoint payloads, written and read back with combinators. *)
  let rng = Rng.create 105 in
  let gen_item () =
    ( (if Rng.bernoulli rng 0.5 then Some (Rng.int rng 1_000_000) else None),
      List.init (Rng.int rng 8) (fun _ -> Rng.float rng) )
  in
  for _ = 1 to 50 do
    let v = List.init (Rng.int rng 10) (fun _ -> gen_item ()) in
    let write w =
      Persist.Writer.list w
        (fun w (o, fs) ->
          Persist.Writer.option w Persist.Writer.int o;
          Persist.Writer.list w Persist.Writer.float fs)
        v
    in
    let read r =
      Persist.Reader.list r (fun r ->
          let o = Persist.Reader.option r Persist.Reader.int in
          let fs = Persist.Reader.list r Persist.Reader.float in
          (o, fs))
    in
    Alcotest.(check bool) "nested roundtrip" true (roundtrip write read = v)
  done

let expect_corrupt name f =
  match f () with
  | exception Persist.Corrupt _ -> ()
  | _ -> Alcotest.fail (name ^ ": expected Persist.Corrupt")

let test_corrupt_inputs () =
  let blob =
    let w = Persist.Writer.create ~magic ~version:1 in
    Persist.Writer.int w 42;
    Persist.Writer.string w "hello";
    Persist.Writer.contents w
  in
  expect_corrupt "bad magic" (fun () ->
      Persist.Reader.of_string ~magic:"WRONG" blob);
  expect_corrupt "empty input" (fun () -> Persist.Reader.of_string ~magic "");
  (* Truncation at every prefix must raise on some read, never crash. *)
  for len = 0 to String.length blob - 1 do
    let cut = String.sub blob 0 len in
    match Persist.Reader.of_string ~magic cut with
    | exception Persist.Corrupt _ -> ()
    | r ->
      expect_corrupt
        (Printf.sprintf "truncated at %d" len)
        (fun () ->
          let v = Persist.Reader.int r in
          let s = Persist.Reader.string r in
          (v, s))
  done;
  (* Reading past the end of a well-formed blob must also raise. *)
  let r = Persist.Reader.of_string ~magic blob in
  let _ = Persist.Reader.int r in
  let _ = Persist.Reader.string r in
  Alcotest.(check bool) "at end" true (Persist.Reader.at_end r);
  expect_corrupt "read past end" (fun () -> Persist.Reader.int r)

let test_mixed_random_programs () =
  (* Random write programs: a tag-directed sequence of primitives,
     mirrored on the read side — write order is read order. *)
  let rng = Rng.create 106 in
  for _ = 1 to 100 do
    let n = 1 + Rng.int rng 20 in
    let ops =
      List.init n (fun _ ->
          match Rng.int rng 5 with
          | 0 -> `I (Rng.int rng 1_000_000 - 500_000)
          | 1 -> `F (Rng.float rng)
          | 2 -> `B (Rng.bernoulli rng 0.5)
          | 3 -> `S (random_string rng)
          | _ -> `U (Rng.int rng 256))
    in
    let w = Persist.Writer.create ~magic ~version:7 in
    List.iter
      (function
        | `I v -> Persist.Writer.int w v
        | `F v -> Persist.Writer.float w v
        | `B v -> Persist.Writer.bool w v
        | `S v -> Persist.Writer.string w v
        | `U v -> Persist.Writer.u8 w v)
      ops;
    let r = Persist.Reader.of_string ~magic (Persist.Writer.contents w) in
    Alcotest.(check int) "version" 7 (Persist.Reader.version r);
    List.iter
      (function
        | `I v -> Alcotest.(check int) "int" v (Persist.Reader.int r)
        | `F v ->
          Alcotest.(check int64) "float bits" (Int64.bits_of_float v)
            (Int64.bits_of_float (Persist.Reader.float r))
        | `B v -> Alcotest.(check bool) "bool" v (Persist.Reader.bool r)
        | `S v -> Alcotest.(check string) "string" v (Persist.Reader.string r)
        | `U v -> Alcotest.(check int) "u8" v (Persist.Reader.u8 r))
      ops;
    Alcotest.(check bool) "at end" true (Persist.Reader.at_end r)
  done

let suites =
  [
    ( "persist.roundtrip",
      [
        Alcotest.test_case "int LEB128 boundaries" `Quick test_int_boundaries;
        Alcotest.test_case "int random magnitudes" `Quick test_int_random;
        Alcotest.test_case "int64 random" `Quick test_int64_random;
        Alcotest.test_case "float exact bits incl. non-finite" `Quick
          test_float_exact_bits;
        Alcotest.test_case "string random bytes" `Quick test_string_random;
        Alcotest.test_case "nested option/list structures" `Quick
          test_nested_structures;
        Alcotest.test_case "mixed random programs" `Quick
          test_mixed_random_programs;
      ] );
    ( "persist.corrupt",
      [ Alcotest.test_case "malformed inputs raise" `Quick test_corrupt_inputs ]
    );
  ]
