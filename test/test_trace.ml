(* The structured tracing layer: ring-buffer accounting, category masks,
   exporter validity (the Chrome JSON actually parses and its timestamps
   are monotone), run-to-run byte-identity, and a golden decision log.

   Regenerate the golden file after an intentional format change with
     PCC_WRITE_GOLDEN=test/golden/decisions.log dune exec test/test_main.exe
   from the repository root, then inspect the diff. *)

open Pcc_sim
open Pcc_scenario
module Event = Pcc_trace.Event
module Collector = Pcc_trace.Collector
module Export = Pcc_trace.Export

let with_collector c f =
  Collector.install c;
  Fun.protect ~finally:Collector.uninstall (fun () -> f c)

(* A small dumbbell with one unbounded PCC flow and one sized CUBIC flow:
   exercises every event category (pcc, tcp, link, flow — and engine when
   the mask asks for it). *)
let run_scenario ?(mask = Event.cat_all) ?(capacity = 1_000_000) ~seed
    ~duration () =
  let c = Collector.create ~capacity ~mask () in
  with_collector c (fun c ->
      let engine = Engine.create () in
      let rng = Rng.create seed in
      let bandwidth = Units.mbps 20. in
      let links =
        [
          Topology.link ~name:"bottleneck" ~delay:0.015
            ~buffer:(Units.bdp_bytes ~rate:bandwidth ~rtt:0.03)
            ~src:0 ~dst:1 ~bandwidth ();
        ]
      in
      let flows =
        [
          Topology.flow ~route:[ 0; 1 ] (Transport.pcc ());
          Topology.flow ~route:[ 0; 1 ] ~size:200_000 ~label:"cubic-sized"
            (Transport.tcp "cubic");
        ]
      in
      let _topo = Topology.build engine ~rng ~links ~flows () in
      Engine.run ~until:duration engine;
      c)

(* ------------------------------------------------------------------ *)
(* Ring accounting *)

let test_wraparound () =
  let c = Collector.create ~capacity:8 ~mask:Event.cat_all () in
  with_collector c (fun c ->
      for k = 0 to 10 do
        Collector.emit Event.Mi_start ~time:(float_of_int k) ~id:1 ~a:0.
          ~b:0. ~i:k
      done;
      Alcotest.(check int) "length" 8 (Collector.length c);
      Alcotest.(check int) "emitted" 11 (Collector.emitted c);
      Alcotest.(check int) "dropped" 3 (Collector.dropped c);
      let evs = Collector.events c in
      Alcotest.(check (float 0.)) "oldest survivor" 3. evs.(0).Event.time;
      Alcotest.(check int) "newest survivor" 10
        evs.(Array.length evs - 1).Event.i;
      Collector.clear c;
      Alcotest.(check int) "cleared" 0 (Collector.length c);
      Alcotest.(check int) "cleared emitted" 0 (Collector.emitted c))

let test_no_wrap () =
  let c = Collector.create ~capacity:8 ~mask:Event.cat_all () in
  with_collector c (fun c ->
      for k = 0 to 4 do
        Collector.emit Event.Enqueue ~time:(float_of_int k) ~id:0 ~a:0. ~b:0.
          ~i:k
      done;
      Alcotest.(check int) "length" 5 (Collector.length c);
      Alcotest.(check int) "dropped" 0 (Collector.dropped c);
      Alcotest.(check (float 0.)) "first" 0. (Collector.events c).(0).Event.time)

let test_mask () =
  let c = Collector.create ~mask:Event.cat_link () in
  with_collector c (fun c ->
      Collector.emit Event.Mi_start ~time:0. ~id:1 ~a:0. ~b:0. ~i:0;
      Collector.emit Event.Cwnd ~time:0. ~id:1 ~a:1. ~b:1. ~i:0;
      Collector.emit Event.Enqueue ~time:0. ~id:0 ~a:0. ~b:0. ~i:1;
      Alcotest.(check int) "only link events pass" 1 (Collector.length c);
      Alcotest.(check bool) "wants link" true
        (Collector.wants c Event.cat_link);
      Alcotest.(check bool) "not pcc" false (Collector.wants c Event.cat_pcc))

let test_disabled () =
  Alcotest.(check bool) "disabled" false (Collector.enabled ());
  (* Must be a silent no-op, not an error. *)
  Collector.emit Event.Drop ~time:0. ~id:0 ~a:0. ~b:0. ~i:0;
  let c = Collector.create () in
  with_collector c (fun _ ->
      Alcotest.(check bool) "enabled" true (Collector.enabled ()));
  Alcotest.(check bool) "disabled again" false (Collector.enabled ())

let test_pack_rate_info () =
  List.iter
    (fun (phase, step) ->
      let packed = Event.pack_rate_info ~phase ~step in
      Alcotest.(check int) "phase" phase (Event.rate_phase packed);
      Alcotest.(check int) "step" step (Event.rate_step packed))
    [ (0, 0); (1, 0); (2, 1); (2, 17); (1, 3) ]

let test_create_validation () =
  Alcotest.check_raises "capacity" (Invalid_argument
    "Collector.create: capacity must be positive") (fun () ->
      ignore (Collector.create ~capacity:0 ()));
  Alcotest.check_raises "mask" (Invalid_argument
    "Collector.create: mask selects no category") (fun () ->
      ignore (Collector.create ~mask:0 ()))

(* ------------------------------------------------------------------ *)
(* A minimal JSON reader — just enough to prove the Chrome export is
   well-formed without adding a JSON dependency. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad_json of string

let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    if peek () = Some c then advance ()
    else fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("expected " ^ word)
  in
  let string_lit () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some 'u' ->
          (* Keep the escape verbatim; content is irrelevant here. *)
          advance ();
          for _ = 1 to 4 do
            advance ()
          done
        | Some c ->
          Buffer.add_char buf c;
          advance ()
        | None -> fail "dangling escape");
        go ()
      | Some c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let number () =
    let start = !pos in
    let numchar = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> numchar c | None -> false) do
      advance ()
    done;
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = string_lit () in
          skip_ws ();
          expect ':';
          let v = value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((k, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((k, v) :: acc)
          | _ -> fail "expected , or }"
        in
        Obj (members [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec elements acc =
          let v = value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected , or ]"
        in
        Arr (elements [])
      end
    | Some '"' -> Str (string_lit ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (number ())
    | None -> fail "unexpected end"
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let member k = function
  | Obj kvs -> List.assoc_opt k kvs
  | _ -> None

let test_chrome_json_valid () =
  let c = run_scenario ~seed:3 ~duration:2. () in
  Alcotest.(check bool) "captured something" true (Collector.length c > 0);
  let doc = parse_json (Export.chrome_json c) in
  let events =
    match member "traceEvents" doc with
    | Some (Arr evs) -> evs
    | _ -> Alcotest.fail "traceEvents missing"
  in
  Alcotest.(check bool) "nonempty" true (events <> []);
  let last_ts = ref neg_infinity in
  List.iter
    (fun ev ->
      (match member "ph" ev with
      | Some (Str ("M" | "B" | "E" | "C" | "i")) -> ()
      | _ -> Alcotest.fail "bad or missing ph");
      (match member "pid" ev with
      | Some (Num _) -> ()
      | _ -> Alcotest.fail "missing pid");
      (match member "name" ev with
      | Some (Str _) -> ()
      | _ -> Alcotest.fail "missing name");
      match member "ts" ev with
      | Some (Num ts) ->
        if ts < 0. then Alcotest.fail "negative ts";
        if ts < !last_ts then Alcotest.fail "ts not monotone";
        last_ts := ts
      | Some _ -> Alcotest.fail "non-numeric ts"
      | None -> (
        (* Only metadata records may omit ts. *)
        match member "ph" ev with
        | Some (Str "M") -> ()
        | _ -> Alcotest.fail "payload record without ts"))
    events

let test_engine_category () =
  let c =
    run_scenario ~mask:(Event.cat_engine lor Event.cat_flow) ~seed:3
      ~duration:0.5 ()
  in
  let evs = Collector.events c in
  let dispatches =
    Array.to_list evs
    |> List.filter (fun e -> e.Event.kind = Event.Dispatch)
  in
  Alcotest.(check bool) "dispatch recorded" true (dispatches <> []);
  (* The executed counter must be strictly increasing. *)
  let rec mono = function
    | (a : Event.record) :: (b :: _ as rest) ->
      a.Event.i < b.Event.i && mono rest
    | _ -> true
  in
  Alcotest.(check bool) "executed counter increases" true (mono dispatches)

(* ------------------------------------------------------------------ *)
(* Determinism and the golden log *)

let test_deterministic_exports () =
  let c1 = run_scenario ~seed:9 ~duration:2. () in
  let json1 = Export.chrome_json c1
  and log1 = Export.decision_log c1
  and csv1 = Export.csv_series c1 in
  let c2 = run_scenario ~seed:9 ~duration:2. () in
  (* Raw flow/link ids differ between the two runs (process-global
     counters); the exporters' dense renumbering must hide that. *)
  Alcotest.(check string) "chrome json byte-identical" json1
    (Export.chrome_json c2);
  Alcotest.(check string) "decision log byte-identical" log1
    (Export.decision_log c2);
  Alcotest.(check int) "same series" (List.length csv1)
    (List.length (Export.csv_series c2))

let test_seed_sensitivity () =
  let c1 = run_scenario ~seed:9 ~duration:2. () in
  let log1 = Export.decision_log c1 in
  let c2 = run_scenario ~seed:10 ~duration:2. () in
  Alcotest.(check bool) "different seeds, different logs" true
    (log1 <> Export.decision_log c2)

(* Under `dune runtest` the cwd is the staged test directory; when the
   binary is run by hand from the repo root, fall back to the source
   path. *)
let golden_path =
  if Sys.file_exists "golden/decisions.log" then "golden/decisions.log"
  else "test/golden/decisions.log"

let test_golden_decision_log () =
  let c =
    run_scenario ~mask:(Event.cat_pcc lor Event.cat_flow) ~seed:5
      ~duration:1.5 ()
  in
  let log = Export.decision_log c in
  match Sys.getenv_opt "PCC_WRITE_GOLDEN" with
  | Some path ->
    let oc = open_out path in
    output_string oc log;
    close_out oc;
    Printf.printf "golden log written to %s\n" path
  | None ->
    let ic = open_in golden_path in
    let len = in_channel_length ic in
    let expected = really_input_string ic len in
    close_in ic;
    Alcotest.(check string) "matches committed golden log" expected log

let suites =
  [
    ( "trace.collector",
      [
        Alcotest.test_case "ring wraparound accounting" `Quick
          test_wraparound;
        Alcotest.test_case "no wrap below capacity" `Quick test_no_wrap;
        Alcotest.test_case "category mask filters" `Quick test_mask;
        Alcotest.test_case "disabled emit is a no-op" `Quick test_disabled;
        Alcotest.test_case "rate info packing roundtrips" `Quick
          test_pack_rate_info;
        Alcotest.test_case "create validates arguments" `Quick
          test_create_validation;
      ] );
    ( "trace.export",
      [
        Alcotest.test_case "chrome json parses, ts monotone" `Quick
          test_chrome_json_valid;
        Alcotest.test_case "engine category opt-in" `Quick
          test_engine_category;
        Alcotest.test_case "exports byte-identical across runs" `Quick
          test_deterministic_exports;
        Alcotest.test_case "seed changes the trace" `Quick
          test_seed_sensitivity;
        Alcotest.test_case "golden decision log" `Quick
          test_golden_decision_log;
      ] );
  ]
