open Pcc_sim
open Pcc_net

let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Packet *)

let test_packet_data () =
  let p = Packet.data ~flow:1 ~seq:5 ~size:1500 ~now:2. ~retx:false in
  Alcotest.(check bool) "is data" true (Packet.is_data p);
  Alcotest.(check int) "seq" 5 p.Packet.seq;
  check_float "sent_at" 2. p.Packet.sent_at

let test_packet_ack () =
  let p = Packet.data ~flow:1 ~seq:5 ~size:1500 ~now:2. ~retx:true in
  let a = Packet.ack_of p ~cum_ack:3 ~recv_bytes:6000 ~now:2.5 in
  Alcotest.(check bool) "ack not data" false (Packet.is_data a);
  (match a.Packet.kind with
  | Packet.Ack info ->
    Alcotest.(check int) "acked seq" 5 info.Packet.acked_seq;
    Alcotest.(check int) "cum" 3 info.Packet.cum_ack;
    Alcotest.(check bool) "retx echo" true info.Packet.data_retx;
    check_float "timestamp echo" 2. info.Packet.data_sent_at
  | Packet.Data _ -> Alcotest.fail "expected ack");
  Alcotest.(check int) "ack wire size" Units.ack_size a.Packet.size

let test_packet_ack_of_ack_rejected () =
  let p = Packet.data ~flow:1 ~seq:0 ~size:1500 ~now:0. ~retx:false in
  let a = Packet.ack_of p ~cum_ack:0 ~recv_bytes:0 ~now:0. in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Packet.ack_of a ~cum_ack:0 ~recv_bytes:0 ~now:0.);
       false
     with Invalid_argument _ -> true)

let test_fresh_flow_ids () =
  let a = Packet.fresh_flow_id () and b = Packet.fresh_flow_id () in
  Alcotest.(check bool) "unique" true (a <> b)

(* ------------------------------------------------------------------ *)
(* Link *)

let make_link ?(bandwidth = Units.mbps 12.) ?(delay = 0.01) ?(loss = 0.)
    ?(capacity = 15000) engine =
  let rng = Rng.create 1 in
  let q = Queue_disc.droptail_bytes ~capacity () in
  let link =
    Link.create engine ~loss ~rng ~bandwidth ~delay ~queue:q ()
  in
  let received = ref [] in
  Link.set_receiver link (fun p ->
      received := (Engine.now engine, p) :: !received);
  (link, received)

let test_link_delivery_timing () =
  let engine = Engine.create () in
  let link, received = make_link engine in
  (* 1500 B at 12 Mbps = 1 ms serialization + 10 ms propagation. *)
  Link.send link (Packet.data ~flow:1 ~seq:0 ~size:1500 ~now:0. ~retx:false);
  Engine.run engine;
  match !received with
  | [ (t, p) ] ->
    Alcotest.(check int) "seq" 0 p.Packet.seq;
    Alcotest.(check (float 1e-9)) "arrival" 0.011 t
  | _ -> Alcotest.fail "expected exactly one delivery"

let test_link_serializes_in_order () =
  let engine = Engine.create () in
  let link, received = make_link engine in
  for seq = 0 to 4 do
    Link.send link (Packet.data ~flow:1 ~seq ~size:1500 ~now:0. ~retx:false)
  done;
  Engine.run engine;
  let seqs = List.rev_map (fun (_, p) -> p.Packet.seq) !received in
  Alcotest.(check (list int)) "in order" [ 0; 1; 2; 3; 4 ] seqs;
  (* Back-to-back packets are spaced by the serialization time. *)
  let times = List.map fst (List.rev !received) in
  (match times with
  | t0 :: t1 :: _ -> check_float "spacing = tx time" 0.001 (t1 -. t0)
  | _ -> Alcotest.fail "expected deliveries");
  check_float "busy time = 5 tx" 0.005 (Link.busy_time link)

let test_link_queue_overflow_drops () =
  let engine = Engine.create () in
  (* Queue capacity of 10 packets. *)
  let link, received = make_link ~capacity:15000 engine in
  for seq = 0 to 19 do
    Link.send link (Packet.data ~flow:1 ~seq ~size:1500 ~now:0. ~retx:false)
  done;
  Engine.run engine;
  (* One packet transmits immediately; 10 queue; the rest drop. *)
  Alcotest.(check int) "delivered" 11 (List.length !received);
  Alcotest.(check int) "queue drops" 9 ((Link.queue link).Queue_disc.drops ())

let test_link_random_loss () =
  let engine = Engine.create () in
  let link, received = make_link ~loss:0.5 ~capacity:15_000_000 engine in
  for seq = 0 to 999 do
    Link.send link (Packet.data ~flow:1 ~seq ~size:1500 ~now:0. ~retx:false)
  done;
  Engine.run engine;
  let n = List.length !received in
  Alcotest.(check bool) "roughly half lost" true (n > 400 && n < 600);
  Alcotest.(check int) "loss accounting" (1000 - n) (Link.channel_losses link)

let test_link_dynamic_bandwidth () =
  let engine = Engine.create () in
  let link, received = make_link engine in
  Link.send link (Packet.data ~flow:1 ~seq:0 ~size:1500 ~now:0. ~retx:false);
  Engine.run engine;
  Link.set_bandwidth link (Units.mbps 120.);
  Link.set_delay link 0.001;
  let t0 = Engine.now engine in
  Link.send link (Packet.data ~flow:1 ~seq:1 ~size:1500 ~now:t0 ~retx:false);
  Engine.run engine;
  match !received with
  | (t1, _) :: _ ->
    (* 0.1 ms serialization + 1 ms propagation at the new parameters. *)
    Alcotest.(check (float 1e-9)) "new timing" (t0 +. 0.0011) t1
  | [] -> Alcotest.fail "no delivery"

let test_link_bandwidth_change_mid_transmission () =
  (* Pins the documented Link.set_bandwidth semantics that bandwidth-cliff
     faults rely on: a packet already being serialized completes at the
     OLD rate; the new rate applies from the next dequeue. *)
  let engine = Engine.create () in
  let link, received = make_link ~bandwidth:(Units.mbps 12.) ~delay:0. engine in
  (* 1500 B at 12 Mbps = 1 ms serialization each. *)
  Link.send link (Packet.data ~flow:1 ~seq:0 ~size:1500 ~now:0. ~retx:false);
  Link.send link (Packet.data ~flow:1 ~seq:1 ~size:1500 ~now:0. ~retx:false);
  (* Mid-way through packet 0's serialization, grow the link 10x. *)
  ignore
    (Engine.schedule engine ~at:0.0005 (fun () ->
         Link.set_bandwidth link (Units.mbps 120.)));
  Engine.run engine;
  match List.rev !received with
  | [ (t0, p0); (t1, p1) ] ->
    Alcotest.(check int) "first seq" 0 p0.Packet.seq;
    Alcotest.(check int) "second seq" 1 p1.Packet.seq;
    (* Packet 0 keeps its pre-change completion time... *)
    check_float "in-flight packet finishes at the old rate" 0.001 t0;
    (* ...and packet 1 is the first to see the new 0.1 ms serialization. *)
    check_float "next packet serializes at the new rate" 0.0011 t1
  | l -> Alcotest.fail (Printf.sprintf "expected 2 deliveries, got %d" (List.length l))

let test_link_duplication_episode () =
  let engine = Engine.create () in
  let link, received = make_link engine in
  Link.set_duplication link 1.;
  Link.send link (Packet.data ~flow:1 ~seq:0 ~size:1500 ~now:0. ~retx:false);
  Engine.run engine;
  Alcotest.(check int) "delivered twice" 2 (List.length !received);
  Alcotest.(check int) "counted" 1 (Link.duplicated_pkts link);
  Alcotest.(check int) "dup bytes" 1500 (Link.duplicated_bytes link);
  Link.set_duplication link 0.;
  Link.send link (Packet.data ~flow:1 ~seq:1 ~size:1500 ~now:(Engine.now engine) ~retx:false);
  Engine.run engine;
  Alcotest.(check int) "episode over" 3 (List.length !received)

let test_link_reordering_episode () =
  let engine = Engine.create () in
  let link, received = make_link engine in
  (* Every packet gets +50 ms: with 1 ms serialization spacing, seq 0
     (delayed) arrives after seq 1 would have without its own delay — use
     prob 1 on seq 0 only by toggling the episode off in between. *)
  Link.set_reordering link ~prob:1. ~extra:0.05;
  Link.send link (Packet.data ~flow:1 ~seq:0 ~size:1500 ~now:0. ~retx:false);
  ignore
    (Engine.schedule engine ~at:0.0015 (fun () ->
         Link.set_reordering link ~prob:0. ~extra:0.;
         Link.send link
           (Packet.data ~flow:1 ~seq:1 ~size:1500 ~now:0.0015 ~retx:false)));
  Engine.run engine;
  let seqs = List.rev_map (fun (_, p) -> p.Packet.seq) !received in
  Alcotest.(check (list int)) "arrivals out of order" [ 1; 0 ] seqs;
  Alcotest.(check int) "counted" 1 (Link.reordered_pkts link)

let test_link_rejects_bad_args () =
  let engine = Engine.create () in
  let rng = Rng.create 1 in
  let q = Queue_disc.infinite () in
  Alcotest.(check bool) "bad bandwidth" true
    (try
       ignore (Link.create engine ~rng ~bandwidth:0. ~delay:0.01 ~queue:q ());
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Delay line *)

let test_delay_line () =
  let engine = Engine.create () in
  let dl = Delay_line.create engine ~delay:0.25 () in
  let arrived = ref None in
  Delay_line.set_receiver dl (fun p -> arrived := Some (Engine.now engine, p));
  Delay_line.send dl (Packet.data ~flow:1 ~seq:0 ~size:100 ~now:0. ~retx:false);
  Engine.run engine;
  match !arrived with
  | Some (t, _) -> check_float "delay honoured" 0.25 t
  | None -> Alcotest.fail "no delivery"

let test_delay_line_loss () =
  let engine = Engine.create () in
  let rng = Rng.create 2 in
  let dl = Delay_line.create engine ~loss:1.0 ~rng ~delay:0.1 () in
  let count = ref 0 in
  Delay_line.set_receiver dl (fun _ -> incr count);
  for seq = 0 to 9 do
    Delay_line.send dl (Packet.data ~flow:1 ~seq ~size:100 ~now:0. ~retx:false)
  done;
  Engine.run engine;
  Alcotest.(check int) "all lost" 0 !count;
  Alcotest.(check bool) "loss without rng rejected" true
    (try
       ignore (Delay_line.create engine ~loss:0.5 ~delay:0.1 ());
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Receiver *)

let make_receiver engine =
  let acks = ref [] in
  let r = Receiver.create engine ~ack_out:(fun a -> acks := a :: !acks) in
  (r, acks)

let data seq = Packet.data ~flow:1 ~seq ~size:1500 ~now:0. ~retx:false

let test_receiver_in_order () =
  let engine = Engine.create () in
  let r, acks = make_receiver engine in
  Receiver.on_packet r (data 0);
  Receiver.on_packet r (data 1);
  Receiver.on_packet r (data 2);
  Alcotest.(check int) "cum" 2 (Receiver.cum_ack r);
  Alcotest.(check int) "goodput" 4500 (Receiver.goodput_bytes r);
  Alcotest.(check int) "three acks" 3 (List.length !acks)

let test_receiver_out_of_order () =
  let engine = Engine.create () in
  let r, acks = make_receiver engine in
  Receiver.on_packet r (data 0);
  Receiver.on_packet r (data 2);
  Alcotest.(check int) "cum stalls" 0 (Receiver.cum_ack r);
  Receiver.on_packet r (data 1);
  Alcotest.(check int) "cum advances over hole" 2 (Receiver.cum_ack r);
  (* The ack for seq 1 must carry the advanced cumulative ack. *)
  match !acks with
  | last :: _ -> (
    match last.Packet.kind with
    | Packet.Ack a -> Alcotest.(check int) "cum in ack" 2 a.Packet.cum_ack
    | Packet.Data _ -> Alcotest.fail "expected ack")
  | [] -> Alcotest.fail "no acks"

let test_receiver_duplicates () =
  let engine = Engine.create () in
  let r, acks = make_receiver engine in
  Receiver.on_packet r (data 0);
  Receiver.on_packet r (data 0);
  Alcotest.(check int) "goodput counts once" 1500 (Receiver.goodput_bytes r);
  Alcotest.(check int) "received counts both" 2 (Receiver.received_pkts r);
  Alcotest.(check int) "both acked" 2 (List.length !acks)

(* ------------------------------------------------------------------ *)
(* Rate pacer *)

let test_pacer_spacing () =
  let engine = Engine.create () in
  let sends = ref [] in
  let pacer =
    Rate_pacer.create engine ~rate:(Units.mbps 12.) ~send:(fun () ->
        sends := Engine.now engine :: !sends;
        if List.length !sends < 4 then Some 1500 else None)
  in
  Rate_pacer.start pacer;
  Engine.run engine;
  let times = List.rev !sends in
  Alcotest.(check int) "four sends" 4 (List.length times);
  (* 1500 B at 12 Mbps = 1 ms between sends. *)
  (match times with
  | a :: b :: c :: _ ->
    check_float "spacing" 0.001 (b -. a);
    check_float "spacing" 0.001 (c -. b)
  | _ -> ());
  (* Declined send paused the pacer; kick resumes it. *)
  let before = List.length !sends in
  Rate_pacer.kick pacer;
  Engine.run engine;
  Alcotest.(check int) "kick resumes" (before + 1) (List.length !sends)

let test_pacer_rate_change () =
  let engine = Engine.create () in
  let sends = ref [] in
  let pacer = ref None in
  let p =
    Rate_pacer.create engine ~rate:(Units.mbps 12.) ~send:(fun () ->
        sends := Engine.now engine :: !sends;
        (match !pacer with
        | Some p when List.length !sends = 2 ->
          Rate_pacer.set_rate p (Units.mbps 120.)
        | _ -> ());
        if List.length !sends < 4 then Some 1500 else None)
  in
  pacer := Some p;
  Rate_pacer.start p;
  Engine.run engine;
  match List.rev !sends with
  | [ _; b; c; d ] ->
    check_float "new spacing" 0.0001 (c -. b);
    check_float "new spacing" 0.0001 (d -. c)
  | _ -> Alcotest.fail "expected 4 sends"

let test_pacer_stop () =
  let engine = Engine.create () in
  let count = ref 0 in
  let p =
    Rate_pacer.create engine ~rate:(Units.mbps 12.) ~send:(fun () ->
        incr count;
        Some 1500)
  in
  Rate_pacer.start p;
  Engine.run ~until:0.0005 engine;
  Rate_pacer.stop p;
  let n = !count in
  Engine.run ~until:1. engine;
  Alcotest.(check int) "no sends after stop" n !count

(* ------------------------------------------------------------------ *)
(* Scoreboard *)

let ack ?(cum = -1) seq =
  Packet.
    {
      acked_seq = seq;
      cum_ack = cum;
      recv_bytes = 0;
      data_sent_at = 0.;
      data_retx = false;
    }

let test_scoreboard_basics () =
  let sb = Scoreboard.create () in
  (match Scoreboard.fresh_seq sb with
  | Some 0 -> ()
  | _ -> Alcotest.fail "first seq should be 0");
  Scoreboard.record_send sb 0 ~now:0.;
  Alcotest.(check int) "inflight" 1 (Scoreboard.inflight sb);
  let newly = Scoreboard.on_ack sb (ack ~cum:0 0) in
  Alcotest.(check (list int)) "newly delivered" [ 0 ] newly;
  Alcotest.(check int) "inflight drains" 0 (Scoreboard.inflight sb);
  Alcotest.(check int) "high ack" 0 (Scoreboard.high_ack sb)

let test_scoreboard_cum_covers_lost_acks () =
  let sb = Scoreboard.create () in
  for seq = 0 to 4 do
    ignore (Scoreboard.fresh_seq sb);
    Scoreboard.record_send sb seq ~now:0.
  done;
  (* Acks for 0-3 lost; the ack for 4 carries cum=4. *)
  let newly = Scoreboard.on_ack sb (ack ~cum:4 4) in
  Alcotest.(check (list int)) "cum covers holes" [ 4; 0; 1; 2; 3 ] newly;
  Alcotest.(check int) "all acked" 5 (Scoreboard.acked_pkts sb)

let test_scoreboard_gap_detection () =
  let sb = Scoreboard.create () in
  for seq = 0 to 5 do
    ignore (Scoreboard.fresh_seq sb);
    Scoreboard.record_send sb seq ~now:0.
  done;
  (* seq 0 lost; 1..4 sacked. *)
  List.iter (fun s -> ignore (Scoreboard.on_ack sb (ack s))) [ 1; 2; 3; 4 ];
  let lost = Scoreboard.detect_losses sb ~now:10. ~min_age:0.1 in
  Alcotest.(check (list int)) "hole declared" [ 0 ] lost;
  Alcotest.(check (option int)) "queued for retx" (Some 0)
    (Scoreboard.take_retx sb)

let test_scoreboard_age_guard () =
  let sb = Scoreboard.create () in
  for seq = 0 to 5 do
    ignore (Scoreboard.fresh_seq sb);
    Scoreboard.record_send sb seq ~now:0.
  done;
  List.iter (fun s -> ignore (Scoreboard.on_ack sb (ack s))) [ 1; 2; 3; 4 ];
  ignore (Scoreboard.detect_losses sb ~now:1. ~min_age:0.1);
  (* Retransmit seq 0 at t=1; it must NOT be re-marked lost while young. *)
  (match Scoreboard.take_retx sb with
  | Some 0 -> Scoreboard.record_send sb 0 ~now:1.
  | _ -> Alcotest.fail "expected retx of 0");
  let lost = Scoreboard.detect_losses sb ~now:1.01 ~min_age:0.1 in
  Alcotest.(check (list int)) "young retx spared" [] lost;
  let lost = Scoreboard.detect_losses sb ~now:2. ~min_age:0.1 in
  Alcotest.(check (list int)) "old retx re-declared" [ 0 ] lost

let test_scoreboard_take_retx_skips_delivered () =
  let sb = Scoreboard.create () in
  for seq = 0 to 5 do
    ignore (Scoreboard.fresh_seq sb);
    Scoreboard.record_send sb seq ~now:0.
  done;
  List.iter (fun s -> ignore (Scoreboard.on_ack sb (ack s))) [ 1; 2; 3; 4 ];
  ignore (Scoreboard.detect_losses sb ~now:10. ~min_age:0.1);
  (* The original arrives very late, before the retransmission went out. *)
  ignore (Scoreboard.on_ack sb (ack ~cum:4 0));
  Alcotest.(check (option int)) "stale retx skipped" None
    (Scoreboard.take_retx sb)

let test_scoreboard_limit_and_complete () =
  let sb = Scoreboard.create () in
  Scoreboard.limit_pkts sb 2;
  (match (Scoreboard.fresh_seq sb, Scoreboard.fresh_seq sb) with
  | Some 0, Some 1 -> ()
  | _ -> Alcotest.fail "two seqs expected");
  Alcotest.(check (option int)) "limit reached" None (Scoreboard.fresh_seq sb);
  Alcotest.(check bool) "incomplete" false (Scoreboard.complete sb);
  Scoreboard.record_send sb 0 ~now:0.;
  Scoreboard.record_send sb 1 ~now:0.;
  ignore (Scoreboard.on_ack sb (ack ~cum:1 1));
  Alcotest.(check bool) "complete" true (Scoreboard.complete sb)

let test_scoreboard_sweep_stale () =
  let sb = Scoreboard.create () in
  ignore (Scoreboard.fresh_seq sb);
  Scoreboard.record_send sb 0 ~now:0.;
  Alcotest.(check (list int)) "young spared" []
    (Scoreboard.sweep_stale sb ~now:0.05 ~min_age:0.1);
  Alcotest.(check (list int)) "stale swept" [ 0 ]
    (Scoreboard.sweep_stale sb ~now:1. ~min_age:0.1);
  Alcotest.(check bool) "queued" true (Scoreboard.has_retx sb)

let prop_scoreboard_never_negative_inflight =
  QCheck.Test.make ~name:"scoreboard inflight never negative" ~count:200
    QCheck.(list (pair (int_range 0 20) bool))
    (fun events ->
      let sb = Scoreboard.create () in
      List.iter
        (fun (seq, is_send) ->
          if is_send then Scoreboard.record_send sb seq ~now:0.
          else ignore (Scoreboard.on_ack sb (ack seq)))
        events;
      Scoreboard.inflight sb >= 0)

let q = QCheck_alcotest.to_alcotest

let suites =
  [
    ( "net.packet",
      [
        Alcotest.test_case "data" `Quick test_packet_data;
        Alcotest.test_case "ack" `Quick test_packet_ack;
        Alcotest.test_case "ack of ack rejected" `Quick
          test_packet_ack_of_ack_rejected;
        Alcotest.test_case "fresh flow ids" `Quick test_fresh_flow_ids;
      ] );
    ( "net.link",
      [
        Alcotest.test_case "delivery timing" `Quick test_link_delivery_timing;
        Alcotest.test_case "serialization order" `Quick
          test_link_serializes_in_order;
        Alcotest.test_case "overflow drops" `Quick test_link_queue_overflow_drops;
        Alcotest.test_case "random loss" `Quick test_link_random_loss;
        Alcotest.test_case "dynamic retuning" `Quick test_link_dynamic_bandwidth;
        Alcotest.test_case "bandwidth change mid-transmission" `Quick
          test_link_bandwidth_change_mid_transmission;
        Alcotest.test_case "duplication episode" `Quick
          test_link_duplication_episode;
        Alcotest.test_case "reordering episode" `Quick
          test_link_reordering_episode;
        Alcotest.test_case "bad args" `Quick test_link_rejects_bad_args;
      ] );
    ( "net.delay_line",
      [
        Alcotest.test_case "delay" `Quick test_delay_line;
        Alcotest.test_case "loss" `Quick test_delay_line_loss;
      ] );
    ( "net.receiver",
      [
        Alcotest.test_case "in order" `Quick test_receiver_in_order;
        Alcotest.test_case "out of order" `Quick test_receiver_out_of_order;
        Alcotest.test_case "duplicates" `Quick test_receiver_duplicates;
      ] );
    ( "net.rate_pacer",
      [
        Alcotest.test_case "spacing" `Quick test_pacer_spacing;
        Alcotest.test_case "rate change" `Quick test_pacer_rate_change;
        Alcotest.test_case "stop" `Quick test_pacer_stop;
      ] );
    ( "net.scoreboard",
      [
        Alcotest.test_case "basics" `Quick test_scoreboard_basics;
        Alcotest.test_case "cum covers lost acks" `Quick
          test_scoreboard_cum_covers_lost_acks;
        Alcotest.test_case "gap detection" `Quick test_scoreboard_gap_detection;
        Alcotest.test_case "age guard" `Quick test_scoreboard_age_guard;
        Alcotest.test_case "retx skips delivered" `Quick
          test_scoreboard_take_retx_skips_delivered;
        Alcotest.test_case "limit and complete" `Quick
          test_scoreboard_limit_and_complete;
        Alcotest.test_case "sweep stale" `Quick test_scoreboard_sweep_stale;
        q prop_scoreboard_never_negative_inflight;
      ] );
  ]
