(* Scheduler backends: the timing wheel against its contract, and
   against the heap. The load-bearing property everywhere is exact
   (time, seq) dispatch order — same-time events come out in insertion
   order, identically on both backends, so a seeded simulation is
   byte-identical whichever queue it runs on. *)

open Pcc_sim
module EH = Event_heap
module TW = Timing_wheel

(* The wheel covers [cur, cur + 2^48) ticks of 1 µs; anything at or
   beyond that horizon waits in the overflow heap. *)
let beyond_horizon = TW.tick_seconds *. 2. ** 48.

let drain_wheel w =
  let out = ref [] in
  let rec go () =
    match TW.pop w with
    | Some (t, v) ->
      out := (t, v) :: !out;
      go ()
    | None -> ()
  in
  go ();
  List.rev !out

let drain_heap h =
  let out = ref [] in
  let rec go () =
    match EH.pop h with
    | Some (t, v) ->
      out := (t, v) :: !out;
      go ()
    | None -> ()
  in
  go ();
  List.rev !out

(* Same-time events dispatch in insertion order, with push and
   push_unit drawing from one sequence counter. *)
let test_fifo_tie_break () =
  let w = TW.create ~dummy:(-1) () in
  ignore (TW.push w ~time:1. 0);
  TW.push_unit w ~time:1. 1;
  ignore (TW.push w ~time:0.5 2);
  TW.push_unit w ~time:1. 3;
  ignore (TW.push w ~time:1. 4);
  Alcotest.(check (list int))
    "insertion order within a tie" [ 2; 0; 1; 3; 4 ]
    (List.map snd (drain_wheel w));
  (* Sub-tick spacing: distinct times less than a tick apart must still
     come out in time order, not slot order. *)
  let w = TW.create ~dummy:(-1) () in
  ignore (TW.push w ~time:(1. +. 0.9e-6) 0);
  ignore (TW.push w ~time:(1. +. 0.1e-6) 1);
  ignore (TW.push w ~time:1. 2);
  Alcotest.(check (list int))
    "sub-tick times keep exact order" [ 2; 1; 0 ]
    (List.map snd (drain_wheel w))

let test_cancel_accounting () =
  let w = TW.create ~dummy:(-1) () in
  let handles = Array.init 100 (fun i -> TW.push w ~time:(float_of_int i) i) in
  Alcotest.(check int) "size counts live entries" 100 (TW.size w);
  Array.iteri (fun i h -> if i mod 2 = 0 then TW.cancel h) handles;
  Alcotest.(check int) "cancel drops size immediately" 50 (TW.size w);
  TW.cancel handles.(0);
  Alcotest.(check int) "double cancel is a no-op" 50 (TW.size w);
  let popped = drain_wheel w in
  Alcotest.(check (list int))
    "cancelled entries never surface"
    (List.init 50 (fun i -> (2 * i) + 1))
    (List.map snd popped);
  Alcotest.(check int) "empty after drain" 0 (TW.size w);
  Alcotest.(check bool) "is_empty after drain" true (TW.is_empty w);
  (* Cancelling an already-popped event must not disturb a later
     entry reusing its arena slot. *)
  let h = TW.push w ~time:1. 7 in
  Alcotest.(check (list int)) "popped" [ 7 ] (List.map snd (drain_wheel w));
  TW.cancel h;
  ignore (TW.push w ~time:2. 8);
  Alcotest.(check (list int))
    "stale cancel does not kill a reused slot" [ 8 ]
    (List.map snd (drain_wheel w))

(* Events pushed beyond the wheel's horizon park in the overflow heap
   and migrate into the wheel as the clock advances past epoch
   boundaries; global order must survive the trip. *)
let test_overflow_migration () =
  let w = TW.create ~dummy:(-1) () in
  ignore (TW.push w ~time:(beyond_horizon *. 2.5) 0);
  ignore (TW.push w ~time:1. 1);
  ignore (TW.push w ~time:(beyond_horizon +. 2.) 2);
  ignore (TW.push w ~time:(beyond_horizon -. 1.) 3);
  ignore (TW.push w ~time:(beyond_horizon +. 1.) 4);
  let _, _, _, overflow_len, _ = TW.stats w in
  Alcotest.(check bool)
    "far-future events sit in overflow" true (overflow_len >= 3);
  Alcotest.(check (list int))
    "order across epoch migrations" [ 1; 3; 4; 2; 0 ]
    (List.map snd (drain_wheel w));
  (* A cancelled overflow entry must not block the epoch jump. *)
  let w = TW.create ~dummy:(-1) () in
  let h = TW.push w ~time:(beyond_horizon +. 1.) 0 in
  ignore (TW.push w ~time:(beyond_horizon +. 2.) 1);
  TW.cancel h;
  Alcotest.(check (list int))
    "dead overflow minimum is skipped" [ 1 ]
    (List.map snd (drain_wheel w))

(* An event that keeps rescheduling itself at the current instant never
   lets the clock advance; the engine's stall watchdog must convert
   that hang into Livelock Stall on both backends. *)
let test_zero_delay_livelock () =
  List.iter
    (fun scheduler ->
      let engine = Engine.create ~scheduler () in
      let rec respawn () = Engine.post engine ~at:(Engine.now engine) respawn in
      Engine.post engine ~at:0.1 respawn;
      match Engine.run ~until:1. engine with
      | () ->
        Alcotest.failf "%s: zero-delay loop terminated"
          (Engine.scheduler_name scheduler)
      | exception Engine.Livelock { kind = Engine.Stall; time; _ } ->
        Alcotest.(check (float 1e-9))
          (Engine.scheduler_name scheduler ^ ": stalled at the loop instant")
          0.1 time
      | exception Engine.Livelock { kind = Engine.Budget; _ } ->
        Alcotest.failf "%s: expected Stall, got Budget"
          (Engine.scheduler_name scheduler))
    [ Engine.Heap; Engine.Wheel ]

(* Randomized differential: an arbitrary interleaving of pushes (times
   from ns to years, duplicates included), cancels and pops must pop
   the identical (time, value) sequence from both backends. *)
let test_differential_random () =
  let rng = Rng.create 20260809 in
  for _round = 1 to 20 do
    let h = EH.create () in
    let w = TW.create ~dummy:(-1) () in
    let h_handles = ref [] and w_handles = ref [] in
    let popped_h = ref [] and popped_w = ref [] in
    for i = 0 to 999 do
      match Rng.int rng 10 with
      | 0 | 1 | 2 | 3 | 4 ->
        (* Mixed magnitudes: same-slot collisions, far future, overflow. *)
        let time =
          match Rng.int rng 4 with
          | 0 -> Rng.uniform rng 0. 1e-4
          | 1 -> Rng.uniform rng 0. 10.
          | 2 -> float_of_int (Rng.int rng 4)
          | _ -> Rng.uniform rng 0. (beyond_horizon *. 2.)
        in
        let cancellable = Rng.bool rng in
        if cancellable then begin
          h_handles := EH.push h ~time i :: !h_handles;
          w_handles := TW.push w ~time i :: !w_handles
        end
        else begin
          EH.push_unit h ~time i;
          TW.push_unit w ~time i
        end
      | 5 | 6 -> (
        (match EH.pop h with
        | Some (t, v) -> popped_h := (t, v) :: !popped_h
        | None -> ());
        match TW.pop w with
        | Some (t, v) -> popped_w := (t, v) :: !popped_w
        | None -> ())
      | _ -> (
        (* Cancel the same (by construction) pending event in both. *)
        match (!h_handles, !w_handles) with
        | hh :: hrest, wh :: wrest ->
          EH.cancel hh;
          TW.cancel wh;
          h_handles := hrest;
          w_handles := wrest
        | _ -> ())
    done;
    popped_h := List.rev_append !popped_h (drain_heap h);
    popped_w := List.rev_append !popped_w (drain_wheel w);
    Alcotest.(check int)
      "same pop count"
      (List.length !popped_h)
      (List.length !popped_w);
    List.iter2
      (fun (th, vh) (tw, vw) ->
        if not (Float.equal th tw && vh = vw) then
          Alcotest.failf "divergence: heap (%h, %d) vs wheel (%h, %d)" th vh tw
            vw)
      !popped_h !popped_w
  done

(* End-to-end: a registry experiment renders byte-identically under
   both backends at a fixed seed. Uses the many-flow stress entry — the
   scenario built to exercise the wheel — at a tiny population. *)
let test_experiment_byte_identity () =
  let saved = Engine.default_scheduler () in
  Fun.protect
    ~finally:(fun () -> Engine.set_default_scheduler saved)
    (fun () ->
      let render scheduler =
        Engine.set_default_scheduler scheduler;
        match Pcc_experiments.Exp_registry.find "manyflow" with
        | None -> Alcotest.fail "manyflow not registered"
        | Some e ->
          e.Pcc_experiments.Exp_registry.render ~scale:0.005 ~seed:7 ()
      in
      let heap = render Engine.Heap in
      let wheel = render Engine.Wheel in
      Alcotest.(check string) "identical rendering" heap wheel)

let suites =
  [
    ( "sim.scheduler",
      [
        Alcotest.test_case "wheel same-time FIFO tie-break" `Quick
          test_fifo_tie_break;
        Alcotest.test_case "wheel cancel-then-pop accounting" `Quick
          test_cancel_accounting;
        Alcotest.test_case "wheel overflow migration" `Quick
          test_overflow_migration;
        Alcotest.test_case "zero-delay livelock watchdog (both)" `Quick
          test_zero_delay_livelock;
        Alcotest.test_case "randomized heap-vs-wheel differential" `Quick
          test_differential_random;
        Alcotest.test_case "experiment byte-identity heap-vs-wheel" `Quick
          test_experiment_byte_identity;
      ] );
  ]
