open Pcc_sim
open Pcc_scenario

(* SABUL and PCP behavioural tests through the scenario harness. *)

let solo ?(bandwidth = Units.mbps 50.) ?(rtt = 0.04) ?(loss = 0.)
    ?(jitter = 0.) ?(duration = 30.) ?size spec =
  let engine = Engine.create () in
  let rng = Rng.create 21 in
  let path =
    Path.build engine ~rng ~bandwidth ~rtt
      ~buffer:(Units.bdp_bytes ~rate:bandwidth ~rtt)
      ~loss ~jitter
      ~flows:[ Path.flow ?size spec ]
      ()
  in
  Engine.run ~until:duration engine;
  (engine, path, (Path.flows path).(0))

let test_sabul_reaches_capacity () =
  let _, _, f = solo Transport.sabul in
  let tput = float_of_int (Path.goodput_bytes f * 8) /. 30. in
  Alcotest.(check bool) "above 70% of capacity" true
    (tput > 0.7 *. Units.mbps 50.)

let test_sabul_loss_tolerant_but_below_pcc () =
  let _, _, sab = solo ~loss:0.01 ~duration:60. Transport.sabul in
  let _, _, reno = solo ~loss:0.01 ~duration:60. (Transport.tcp "newreno") in
  let t_sab = Path.goodput_bytes sab and t_reno = Path.goodput_bytes reno in
  Alcotest.(check bool) "sabul beats reno under random loss" true
    (t_sab > 2 * t_reno)

let test_sabul_finite_transfer () =
  let size = 200 * Units.mss in
  let _, _, f = solo ~loss:0.02 ~duration:60. ~size Transport.sabul in
  Alcotest.(check bool) "completes" true (f.Path.sender.Pcc_net.Sender.is_complete ());
  Alcotest.(check bool) "fct recorded" true (f.Path.fct <> None)

let test_pcp_reaches_capacity_on_clean_link () =
  let _, _, f = solo ~duration:40. Transport.pcp in
  let tput = float_of_int (Path.goodput_bytes f * 8) /. 40. in
  Alcotest.(check bool) "above 60% of capacity" true
    (tput > 0.6 *. Units.mbps 50.)

let test_pcp_underestimates_with_jitter () =
  (* §5: latency jitter breaks packet-train dispersion estimates. *)
  let _, _, clean = solo ~duration:40. Transport.pcp in
  let _, _, jittery = solo ~jitter:0.004 ~duration:40. Transport.pcp in
  let t_clean = Path.goodput_bytes clean in
  let t_jit = Path.goodput_bytes jittery in
  Alcotest.(check bool) "jitter hurts PCP" true
    (float_of_int t_jit < 0.8 *. float_of_int t_clean)

let test_pcp_finite_transfer () =
  let size = 100 * Units.mss in
  let _, _, f = solo ~loss:0.01 ~duration:60. ~size Transport.pcp in
  Alcotest.(check bool) "completes" true
    (f.Path.sender.Pcc_net.Sender.is_complete ())

let test_cross_traffic_occupies_share () =
  let engine = Engine.create () in
  let rng = Rng.create 4 in
  let path =
    Path.build engine ~rng ~bandwidth:(Units.mbps 10.) ~rtt:0.02
      ~buffer:(Units.kib 64)
      ~flows:[ Path.flow (Transport.tcp "newreno") ]
      ()
  in
  let ct =
    Cross_traffic.onoff engine ~rng:(Rng.create 5)
      ~sink:(Path.send_bottleneck path)
      ~rate:(Units.mbps 5.) ~on_mean:0.5 ~off_mean:0.5 ()
  in
  Engine.run ~until:20. engine;
  Cross_traffic.stop ct;
  Alcotest.(check bool) "cross traffic sent packets" true
    (Cross_traffic.sent_pkts ct > 100);
  let tcp_share =
    float_of_int (Path.goodput_bytes (Path.flows path).(0) * 8) /. 20.
  in
  (* TCP should lose a visible share of the 10 Mbps to the bursts. *)
  Alcotest.(check bool) "tcp squeezed" true (tcp_share < Units.mbps 9.5);
  Alcotest.(check bool) "tcp survives" true (tcp_share > Units.mbps 2.)

let test_dynamics_driver_changes_link () =
  let engine = Engine.create () in
  let rng = Rng.create 6 in
  let path =
    Path.build engine ~rng ~bandwidth:(Units.mbps 50.) ~rtt:0.05
      ~buffer:(Units.kib 128)
      ~flows:[ Path.flow (Transport.pcc ()) ]
      ()
  in
  let dyn =
    Dynamics.start engine ~rng:(Rng.create 7) ~topo:(Path.topology path)
      ~period:1. ()
  in
  Engine.run ~until:10.5 engine;
  Dynamics.stop dyn;
  let series = Dynamics.optimal_series dyn in
  Alcotest.(check bool) "about 11 redraws" true (Array.length series >= 10);
  let bws = Array.map snd series in
  Alcotest.(check bool) "within range" true
    (Array.for_all (fun b -> b >= Units.mbps 10. && b <= Units.mbps 100.) bws);
  let mean = Dynamics.mean_optimal dyn ~until:10.5 in
  Alcotest.(check bool) "mean within range" true
    (mean > Units.mbps 10. && mean < Units.mbps 100.)

let suites =
  [
    ( "transports.sabul",
      [
        Alcotest.test_case "reaches capacity" `Slow test_sabul_reaches_capacity;
        Alcotest.test_case "loss tolerant" `Slow
          test_sabul_loss_tolerant_but_below_pcc;
        Alcotest.test_case "finite transfer" `Slow test_sabul_finite_transfer;
      ] );
    ( "transports.pcp",
      [
        Alcotest.test_case "reaches capacity" `Slow
          test_pcp_reaches_capacity_on_clean_link;
        Alcotest.test_case "jitter hurts" `Slow test_pcp_underestimates_with_jitter;
        Alcotest.test_case "finite transfer" `Slow test_pcp_finite_transfer;
      ] );
    ( "scenario.background",
      [
        Alcotest.test_case "cross traffic" `Slow test_cross_traffic_occupies_share;
        Alcotest.test_case "dynamics driver" `Slow
          test_dynamics_driver_changes_link;
      ] );
  ]
