open Pcc_sim
open Pcc_scenario

(* Failure injection and adversarial conditions, driven through the
   declarative Fault schedule API (faults are data; Fault.inject compiles
   them onto engine timers). The invariant checker rides along on the
   fault-heavy scenarios, so every run also audits packet conservation,
   queue occupancy and throughput bounds. *)

let build ?(bandwidth = Units.mbps 50.) ?(rtt = 0.03) ?(loss = 0.)
    ?(rev_loss = 0.) ?seed:(sd = 31) spec =
  let engine = Engine.create () in
  let rng = Rng.create sd in
  let path =
    Path.build engine ~rng ~bandwidth ~rtt
      ~buffer:(Units.bdp_bytes ~rate:bandwidth ~rtt)
      ~loss ~rev_loss
      ~flows:[ Path.flow spec ]
      ()
  in
  (engine, path, (Path.flows path).(0))

let window_mbps engine f t0 t1 =
  Engine.run ~until:t0 engine;
  let b0 = Path.goodput_bytes f in
  Engine.run ~until:t1 engine;
  float_of_int ((Path.goodput_bytes f - b0) * 8) /. (t1 -. t0) /. 1e6

let test_pcc_survives_blackout () =
  let engine, path, f = build (Transport.pcc ()) in
  ignore (Invariant.attach_path path);
  (* Total blackout between t=10 and t=13. *)
  Fault.inject_path path [ Fault.at 10. (Fault.Blackout { duration = 3. }) ];
  let before = window_mbps engine f 5. 10. in
  let during = window_mbps engine f 10.5 12.5 in
  let after = window_mbps engine f 25. 40. in
  Alcotest.(check bool) "healthy before" true (before > 35.);
  Alcotest.(check bool) "starved during" true (during < 5.);
  Alcotest.(check bool) "recovers after" true (after > 30.)

let test_blackout_resume_with_rto_backstop () =
  (* A 5 s total blackout outlasts any single RTO: both PCC and CUBIC
     must resume transmission after the link returns. For CUBIC the
     resume is driven by the retransmission-timeout backstop, visible
     as cause-2 Cwnd trace events (the [timeouts] counter's trace
     mirror); PCC's rate machinery needs no RTO at all. *)
  let run spec =
    let c = Pcc_trace.Collector.create ~capacity:500_000 () in
    Pcc_trace.Collector.install c;
    Fun.protect ~finally:Pcc_trace.Collector.uninstall @@ fun () ->
    let engine, path, f = build spec in
    Fault.inject_path path [ Fault.at 10. (Fault.Blackout { duration = 5. }) ];
    let before = window_mbps engine f 5. 10. in
    let during = window_mbps engine f 10.5 14.5 in
    let after = window_mbps engine f 30. 45. in
    let rto_events =
      Array.fold_left
        (fun acc (r : Pcc_trace.Event.record) ->
          if
            r.Pcc_trace.Event.kind = Pcc_trace.Event.Cwnd
            && r.Pcc_trace.Event.i = 2
          then acc + 1
          else acc)
        0
        (Pcc_trace.Collector.events c)
    in
    (before, during, after, rto_events)
  in
  let b_pcc, d_pcc, a_pcc, _ = run (Transport.pcc ()) in
  Alcotest.(check bool) "pcc healthy before" true (b_pcc > 35.);
  Alcotest.(check bool) "pcc starved during" true (d_pcc < 5.);
  Alcotest.(check bool) "pcc resumes" true (a_pcc > 30.);
  let b_cub, d_cub, a_cub, rto_cub = run (Transport.tcp "cubic") in
  Alcotest.(check bool) "cubic healthy before" true (b_cub > 20.);
  Alcotest.(check bool) "cubic starved during" true (d_cub < 5.);
  Alcotest.(check bool) "cubic resumes" true (a_cub > 5.);
  Alcotest.(check bool) "cubic fired the RTO backstop" true (rto_cub >= 1)

let test_pcc_adapts_to_bandwidth_cliff () =
  let engine, path, f = build (Transport.pcc ()) in
  ignore (Invariant.attach_path path);
  (* 50 -> 5 Mbps at t=15, restored at t=30. *)
  Fault.inject_path path
    [ Fault.at 15. (Fault.Bandwidth_cliff { duration = 15.; factor = 0.1 }) ];
  let high1 = window_mbps engine f 8. 14. in
  let low = window_mbps engine f 22. 29. in
  let high2 = window_mbps engine f 45. 60. in
  Alcotest.(check bool) "uses 50 Mbps" true (high1 > 35.);
  Alcotest.(check bool) "respects 5 Mbps" true (low < 5.5);
  Alcotest.(check bool) "uses some of the cliff" true (low > 3.);
  Alcotest.(check bool) "recovers the upside" true (high2 > 30.)

let test_pcc_tolerates_ack_loss () =
  (* 20% ack loss: cumulative acks must keep the monitor's loss estimate
     at the true (zero) data loss. *)
  let engine, path, f = build (Transport.pcc ()) in
  Fault.inject_path path
    [ Fault.at 0. (Fault.Reverse_loss_burst { duration = 45.; loss = 0.2 }) ];
  let tput = window_mbps engine f 10. 40. in
  Alcotest.(check bool) "still near capacity" true (tput > 35.)

let test_tcp_tolerates_ack_loss () =
  let engine, path, f = build (Transport.tcp "newreno") in
  Fault.inject_path path
    [ Fault.at 0. (Fault.Reverse_loss_burst { duration = 45.; loss = 0.2 }) ];
  let tput = window_mbps engine f 10. 40. in
  Alcotest.(check bool) "cumulative acks carry reno" true (tput > 25.)

let test_pcc_reverse_blackhole_then_recovery () =
  (* All acks vanish for 2 s: every MI during the hole reads 100% loss;
     PCC must neither crash nor deadlock, and must come back. *)
  let engine, path, f = build ~seed:13 (Transport.pcc ()) in
  Fault.inject_path path
    [ Fault.at 8. (Fault.Reverse_blackhole { duration = 2. }) ];
  Engine.run ~until:30. engine;
  let late = window_mbps engine f 30. 45. in
  Alcotest.(check bool) "recovered" true (late > 30.)

let test_pcc_forward_blackhole_then_recovery () =
  (* The forward-path variant of the same hole (the pre-Fault-API version
     of this test): the monitor again sees nothing come back. *)
  let engine, path, f = build ~seed:13 (Transport.pcc ()) in
  Fault.inject_path path [ Fault.at 8. (Fault.Blackout { duration = 2. }) ];
  Engine.run ~until:30. engine;
  let late = window_mbps engine f 30. 45. in
  Alcotest.(check bool) "recovered" true (late > 30.)

let test_fault_restoration_is_exact () =
  (* Faults snapshot the knob they perturb and restore it, composing with
     a standing baseline impairment. *)
  let engine, path, _ = build ~loss:0.01 (Transport.pcc ()) in
  let link = Path.bottleneck path in
  Fault.inject_path path
    [
      Fault.at 2. (Fault.Loss_burst { duration = 1.; loss = 0.3 });
      Fault.at 5. (Fault.Bandwidth_cliff { duration = 1.; factor = 0.25 });
      Fault.at 8. (Fault.Delay_spike { duration = 1.; extra = 0.05 });
    ];
  Engine.run ~until:2.5 engine;
  Alcotest.(check (float 1e-9)) "burst active" 0.3 (Pcc_net.Link.loss link);
  Engine.run ~until:4. engine;
  Alcotest.(check (float 1e-9)) "baseline loss restored" 0.01
    (Pcc_net.Link.loss link);
  Engine.run ~until:5.5 engine;
  Alcotest.(check (float 1e-9)) "cliff active" (Units.mbps 12.5)
    (Pcc_net.Link.bandwidth link);
  Engine.run ~until:7. engine;
  Alcotest.(check (float 1e-9)) "bandwidth restored" (Units.mbps 50.)
    (Pcc_net.Link.bandwidth link);
  Engine.run ~until:8.5 engine;
  Alcotest.(check (float 1e-9)) "spike active" 0.065
    (Pcc_net.Link.delay link);
  Engine.run ~until:10. engine;
  Alcotest.(check (float 1e-9)) "delay restored" 0.015
    (Pcc_net.Link.delay link)

let test_chaos_gauntlet_pcc_vs_cubic () =
  (* The paper's Fig. 11 dynamics claim, condensed: through an identical
     seeded gauntlet of faults, PCC recovers to >=90% of its pre-fault
     throughput after every fault. *)
  let gauntlet spec =
    let engine = Engine.create () in
    let rng = Rng.create 11 in
    let fault_rng = Rng.split rng in
    let bandwidth = Units.mbps 50. in
    let path =
      Path.build engine ~rng ~bandwidth ~rtt:0.03
        ~buffer:(Units.bdp_bytes ~rate:bandwidth ~rtt:0.03)
        ~flows:[ Path.flow spec ]
        ()
    in
    ignore (Invariant.attach_path path);
    let f = (Path.flows path).(0) in
    let recorder =
      Pcc_metrics.Recorder.create engine ~interval:0.25 (fun () ->
          float_of_int (Path.goodput_bytes f))
    in
    let schedule = Fault.chaos ~rng:fault_rng ~duration:60. () in
    Fault.inject_path path schedule;
    Engine.run ~until:60. engine;
    let reports =
      Pcc_metrics.Recovery.analyze
        ~series:(Pcc_metrics.Recorder.rates_bps recorder)
        (Fault.windows schedule)
    in
    (Fault.windows schedule, reports, Path.goodput_bytes f)
  in
  let faults_pcc, reports_pcc, goodput_pcc = gauntlet (Transport.pcc ()) in
  let faults_cubic, reports_cubic, goodput_cubic =
    gauntlet (Transport.tcp "cubic")
  in
  (* Determinism: both transports faced the exact same gauntlet. *)
  Alcotest.(check bool) "identical schedules" true (faults_pcc = faults_cubic);
  Alcotest.(check bool) "gauntlet not empty" true (List.length faults_pcc >= 2);
  Alcotest.(check int) "one report per fault" (List.length faults_pcc)
    (List.length reports_pcc);
  (* PCC comes back from every fault... *)
  List.iter
    (fun r ->
      Alcotest.(check bool)
        ("pcc recovers from " ^ r.Pcc_metrics.Recovery.label)
        true
        (r.Pcc_metrics.Recovery.time_to_recover <> None))
    reports_pcc;
  (* ...and neither transport collapses outright. *)
  Alcotest.(check bool) "pcc made progress" true
    (float_of_int (goodput_pcc * 8) /. 60. > Units.mbps 20.);
  Alcotest.(check bool) "cubic made progress" true
    (float_of_int (goodput_cubic * 8) /. 60. > Units.mbps 5.);
  Alcotest.(check int) "one report per fault (cubic)"
    (List.length faults_cubic)
    (List.length reports_cubic)

let test_determinism_end_to_end () =
  (* The flagship reproducibility property: identical seeds give
     bit-identical results across independent engines. *)
  let run () =
    let engine, _, f =
      build ~loss:0.01 ~seed:77 (Transport.pcc ())
    in
    Engine.run ~until:20. engine;
    (Path.goodput_bytes f, f.Path.sender.Pcc_net.Sender.sent_pkts ())
  in
  let a = run () and b = run () in
  Alcotest.(check (pair int int)) "bit-identical" a b

let test_seeds_actually_vary () =
  let run sd =
    let engine, _, f = build ~loss:0.01 ~seed:sd (Transport.pcc ()) in
    Engine.run ~until:10. engine;
    Path.goodput_bytes f
  in
  Alcotest.(check bool) "different seeds differ" true (run 1 <> run 2)

let test_many_flows_share_link () =
  (* 16 PCC flows on one link: capacity respected, no starvation. *)
  let engine = Engine.create () in
  let rng = Rng.create 55 in
  let bandwidth = Units.mbps 80. in
  let path =
    Path.build engine ~rng ~bandwidth ~rtt:0.02
      ~buffer:(Units.bdp_bytes ~rate:bandwidth ~rtt:0.02)
      ~flows:(List.init 16 (fun _ -> Path.flow (Transport.pcc ())))
      ()
  in
  ignore (Invariant.attach_path path);
  Engine.run ~until:60. engine;
  let fs = Path.flows path in
  let b0 = Array.map Path.goodput_bytes fs in
  let sent0 =
    Array.fold_left
      (fun acc f -> acc + f.Path.sender.Pcc_net.Sender.sent_pkts ())
      0 fs
  in
  Engine.run ~until:140. engine;
  let shares =
    Array.mapi
      (fun i f -> float_of_int ((Path.goodput_bytes f - b0.(i)) * 8) /. 80.)
      fs
  in
  let total = Array.fold_left ( +. ) 0. shares in
  Alcotest.(check bool) "sum below capacity" true (total < bandwidth *. 1.02);
  Alcotest.(check bool) "link well used" true (total > bandwidth *. 0.7);
  Alcotest.(check bool) "nobody starved" true
    (Array.for_all (fun s -> s > bandwidth /. 16. /. 6.) shares);
  Alcotest.(check bool) "roughly fair" true
    (Pcc_metrics.Stats.jain_index shares > 0.6);
  (* Waste (drops + duplicates) over the measurement window, excluding the
     startup transient; the safe utility should keep it near its ~5% cap
     plus overshoot episodes. *)
  let sent1 =
    Array.fold_left
      (fun acc f -> acc + f.Path.sender.Pcc_net.Sender.sent_pkts ())
      0 fs
  in
  let delivered =
    Array.to_list fs
    |> List.mapi (fun i f -> (Path.goodput_bytes f - b0.(i)) / Units.mss)
    |> List.fold_left ( + ) 0
  in
  let sent = max 1 (sent1 - sent0) in
  Alcotest.(check bool) "loss capped by the safe utility" true
    (float_of_int (sent - delivered) /. float_of_int sent < 0.15)

let test_zero_size_transfer () =
  let engine = Engine.create () in
  let rng = Rng.create 1 in
  let path =
    Path.build engine ~rng ~bandwidth:(Units.mbps 10.) ~rtt:0.02
      ~buffer:(Units.kib 64)
      ~flows:[ Path.flow ~size:1 (Transport.pcc ()) ]
      ()
  in
  Engine.run ~until:5. engine;
  let f = (Path.flows path).(0) in
  Alcotest.(check bool) "one-byte flow completes" true
    (f.Path.sender.Pcc_net.Sender.is_complete ())

let prop_conservation =
  (* End-to-end conservation on random single-flow scenarios: the receiver
     never accepts more distinct bytes than were sent, goodput never
     exceeds capacity x time, and the engine drains without error. The
     invariant checker audits the same run at link granularity. *)
  QCheck.Test.make ~name:"conservation: goodput <= sent and <= capacity*time"
    ~count:12
    QCheck.(
      quad (int_range 1 1000) (int_range 2 200) (int_range 5 100)
        (int_range 0 3))
    (fun (seed, bw_mbps, rtt_ms, transport_ix) ->
      let bandwidth = Units.mbps (float_of_int bw_mbps) in
      let rtt = float_of_int rtt_ms /. 1000. in
      let spec =
        match transport_ix with
        | 0 -> Transport.pcc ()
        | 1 -> Transport.tcp "cubic"
        | 2 -> Transport.sabul
        | _ -> Transport.tcp "newreno"
      in
      let engine = Engine.create () in
      let rng = Rng.create seed in
      let path =
        Path.build engine ~rng ~bandwidth ~rtt
          ~buffer:(Units.bdp_bytes ~rate:bandwidth ~rtt)
          ~loss:0.005
          ~flows:[ Path.flow spec ]
          ()
      in
      ignore (Invariant.attach_path path);
      let duration = 5. in
      Engine.run ~until:duration engine;
      let f = (Path.flows path).(0) in
      let sent = f.Path.sender.Pcc_net.Sender.sent_pkts () * Units.mss in
      let good = Path.goodput_bytes f in
      good <= sent
      && float_of_int (good * 8)
         <= (bandwidth *. (duration +. rtt)) +. float_of_int (8 * Units.mss))

let suites =
  [
    ( "robustness",
      [
        Alcotest.test_case "blackout recovery" `Slow test_pcc_survives_blackout;
        Alcotest.test_case "5s blackout, RTO backstop" `Slow
          test_blackout_resume_with_rto_backstop;
        Alcotest.test_case "bandwidth cliff" `Slow
          test_pcc_adapts_to_bandwidth_cliff;
        Alcotest.test_case "ack loss (pcc)" `Slow test_pcc_tolerates_ack_loss;
        Alcotest.test_case "ack loss (tcp)" `Slow test_tcp_tolerates_ack_loss;
        Alcotest.test_case "reverse blackhole" `Slow
          test_pcc_reverse_blackhole_then_recovery;
        Alcotest.test_case "forward blackhole" `Slow
          test_pcc_forward_blackhole_then_recovery;
        Alcotest.test_case "fault restoration" `Quick
          test_fault_restoration_is_exact;
        Alcotest.test_case "chaos gauntlet (pcc vs cubic)" `Slow
          test_chaos_gauntlet_pcc_vs_cubic;
        Alcotest.test_case "determinism" `Slow test_determinism_end_to_end;
        Alcotest.test_case "seed variation" `Quick test_seeds_actually_vary;
        Alcotest.test_case "16-flow sharing" `Slow test_many_flows_share_link;
        Alcotest.test_case "tiny transfer" `Quick test_zero_size_transfer;
        QCheck_alcotest.to_alcotest prop_conservation;
      ] );
  ]
