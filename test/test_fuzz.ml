open Pcc_sim
open Pcc_scenario
open Pcc_fuzz

(* The fuzzing harness tested on itself: generator validity, oracle
   smoke, campaign determinism, synthetic shrink-and-repro pipeline,
   corpus file roundtrips, and replay of the committed regression
   corpus (test/corpus/). *)

let gen seed = Scenario.generate ~rng:(Rng.create seed) ()

(* A fresh directory path under the system temp dir; Corpus.save
   creates it on first write. *)
let fresh_dir =
  let n = ref 0 in
  fun () ->
    let f = Filename.temp_file "pcc-fuzz-test" "" in
    Sys.remove f;
    incr n;
    f ^ Printf.sprintf "-%d.d" !n

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Sys.rmdir dir
  end

let test_generator_builds () =
  (* Every generated scenario must satisfy Scenario.build's validation:
     the generator's envelope is the fuzzer's input space. *)
  for seed = 1 to 150 do
    let s = gen seed in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: has flows" seed)
      true
      (List.length s.Scenario.flows >= 1);
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: positive duration" seed)
      true (s.Scenario.duration > 0.);
    let engine = Engine.create () in
    match Scenario.build engine s with
    | built -> built.Scenario.stop ()
    | exception Invalid_argument msg ->
      Alcotest.fail (Printf.sprintf "seed %d rejected by build: %s" seed msg)
  done

let test_generator_deterministic () =
  for seed = 1 to 50 do
    Alcotest.(check bool)
      (Printf.sprintf "seed %d" seed)
      true
      (Scenario.equal (gen seed) (gen seed))
  done

let test_scenario_roundtrip () =
  for seed = 1 to 200 do
    let s = gen seed in
    let s' = Scenario.of_string (Scenario.to_string s) in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d structurally equal" seed)
      true (Scenario.equal s s')
  done

let test_oracles_pass_smoke () =
  (* A handful of generated scenarios through the full suite, deep
     differentials included: all oracles must hold on healthy code. *)
  for seed = 1 to 4 do
    let s = gen seed in
    match Oracle.test ~deep:true s with
    | None -> ()
    | Some f ->
      Alcotest.fail
        (Printf.sprintf "seed %d failed %s: %s" seed f.Oracle.oracle
           f.Oracle.detail)
  done

let test_run_once_reports_events () =
  let s = gen 1 in
  match Oracle.run_once s with
  | Error f ->
    Alcotest.fail (Printf.sprintf "failed %s: %s" f.Oracle.oracle f.Oracle.detail)
  | Ok stats ->
    Alcotest.(check bool) "events executed" true (stats.Oracle.events > 0);
    Alcotest.(check bool) "digest nonempty" true
      (String.length stats.Oracle.digest > 0)

let campaign ?synth ?corpus_dir () =
  let buf = Buffer.create 256 in
  let summary =
    Driver.fuzz ?synth ~deep_every:0 ?corpus_dir
      ~log:(fun line ->
        Buffer.add_string buf line;
        Buffer.add_char buf '\n')
      ~runs:10 ~seed:5 ()
  in
  (summary, Buffer.contents buf)

let test_campaign_deterministic () =
  (* Two identical campaigns — with a synthetic hook so failures,
     shrinking and logging all actually execute — must agree on every
     log byte and every report. *)
  let synth (s : Scenario.t) =
    if List.length s.Scenario.flows >= 2 then Some "synthetic: flows>=2"
    else None
  in
  let s1, log1 = campaign ~synth () in
  let s2, log2 = campaign ~synth () in
  Alcotest.(check string) "logs identical" log1 log2;
  Alcotest.(check int) "same runs" s1.Driver.runs s2.Driver.runs;
  Alcotest.(check (list (pair int string)))
    "same failures"
    (List.map (fun r -> (r.Driver.run, r.Driver.failure.Oracle.oracle)) s1.Driver.failed)
    (List.map (fun r -> (r.Driver.run, r.Driver.failure.Oracle.oracle)) s2.Driver.failed)

let test_synthetic_failure_shrinks () =
  let synth (s : Scenario.t) =
    let n = List.length s.Scenario.flows in
    if n >= 2 then Some (Printf.sprintf "flows=%d" n) else None
  in
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let summary, _ = campaign ~synth ~corpus_dir:dir () in
  Alcotest.(check bool) "at least one failure" true
    (summary.Driver.failed <> []);
  List.iter
    (fun (r : Driver.failure_report) ->
      Alcotest.(check string) "oracle" "synthetic" r.Driver.failure.Oracle.oracle;
      (* flows>=2 is the failure condition, so the minimum is exactly 2
         flows with every optional feature stripped. *)
      let s = r.Driver.shrunk in
      Alcotest.(check int) "shrunk to two flows" 2
        (List.length s.Scenario.flows);
      Alcotest.(check int) "faults dropped" 0 (List.length s.Scenario.faults);
      Alcotest.(check int) "cross dropped" 0 (List.length s.Scenario.cross);
      Alcotest.(check bool) "dynamics dropped" true
        (s.Scenario.dynamics = None);
      match r.Driver.repro_path with
      | None -> Alcotest.fail "repro not banked"
      | Some path ->
        (* The banked repro still fails under the hook... *)
        (match Driver.replay ~synth path with
        | Error f ->
          Alcotest.(check string) "replay fails same oracle" "synthetic"
            f.Oracle.oracle
        | Ok () -> Alcotest.fail "replay with synth hook should fail");
        (* ...and replays green without it. *)
        (match Driver.replay path with
        | Ok () -> ()
        | Error f ->
          Alcotest.fail
            (Printf.sprintf "replay without hook failed %s: %s"
               f.Oracle.oracle f.Oracle.detail)))
    summary.Driver.failed

let test_shrink_size_decreases () =
  (* minimize never returns something larger, and the result still
     fails the same oracle. *)
  let synth (s : Scenario.t) =
    if List.length s.Scenario.links >= 1 then Some "synthetic" else None
  in
  let check = Oracle.test ~synth ~deep:false in
  let s = gen 9 in
  match check s with
  | None -> Alcotest.fail "synth hook should fire on every scenario"
  | Some f ->
    let shrunk, checks =
      Shrink.minimize ~check ~oracle:f.Oracle.oracle s
    in
    Alcotest.(check bool) "not larger" true (Shrink.size shrunk <= Shrink.size s);
    Alcotest.(check bool) "budget respected" true (checks <= 300);
    (match check shrunk with
    | Some f' ->
      Alcotest.(check string) "same oracle" f.Oracle.oracle f'.Oracle.oracle
    | None -> Alcotest.fail "shrunk scenario no longer fails")

let test_corpus_roundtrip () =
  for seed = 11 to 20 do
    let r =
      {
        Corpus.oracle = "synthetic";
        detail = Printf.sprintf "detail for seed %d" seed;
        scenario = gen seed;
      }
    in
    let r' = Corpus.of_string (Corpus.to_string r) in
    Alcotest.(check string) "oracle" r.Corpus.oracle r'.Corpus.oracle;
    Alcotest.(check string) "detail" r.Corpus.detail r'.Corpus.detail;
    Alcotest.(check bool) "scenario" true
      (Scenario.equal r.Corpus.scenario r'.Corpus.scenario);
    (* Content-addressed names survive the roundtrip. *)
    Alcotest.(check string) "filename stable" (Corpus.filename r)
      (Corpus.filename r')
  done

let test_corpus_save_load_dir () =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let mk seed =
    { Corpus.oracle = "synthetic"; detail = "x"; scenario = gen seed }
  in
  let p1 = Corpus.save ~dir (mk 21) in
  let p2 = Corpus.save ~dir (mk 22) in
  (* Saving the same repro again dedupes by content hash. *)
  let p1' = Corpus.save ~dir (mk 21) in
  Alcotest.(check string) "content-addressed dedupe" p1 p1';
  Alcotest.(check bool) "two distinct files" true (p1 <> p2);
  let loaded = Corpus.load_dir dir in
  Alcotest.(check int) "two entries" 2 (List.length loaded);
  List.iter
    (fun (path, (r : Corpus.repro)) ->
      Alcotest.(check string) "name matches content" (Filename.basename path)
        (Corpus.filename r))
    loaded;
  Alcotest.(check (list string))
    "missing dir is empty corpus" []
    (List.map fst (Corpus.load_dir (dir ^ "-missing")))

let test_synth_of_env () =
  let with_env v f =
    Unix.putenv "PCC_FUZZ_SYNTH" v;
    Fun.protect ~finally:(fun () -> Unix.putenv "PCC_FUZZ_SYNTH" "") f
  in
  Alcotest.(check bool) "unset -> no hook" true
    (with_env "" (fun () -> Driver.synth_of_env () = None));
  with_env "always" (fun () ->
      match Driver.synth_of_env () with
      | Some hook ->
        Alcotest.(check bool) "always fires" true (hook (gen 1) <> None)
      | None -> Alcotest.fail "expected a hook");
  with_env "flows>=2" (fun () ->
      match Driver.synth_of_env () with
      | Some hook ->
        for seed = 1 to 20 do
          let s = gen seed in
          Alcotest.(check bool)
            (Printf.sprintf "seed %d predicate matches" seed)
            (List.length s.Scenario.flows >= 2)
            (hook s <> None)
        done
      | None -> Alcotest.fail "expected a hook");
  List.iter
    (fun bad ->
      with_env bad (fun () ->
          match Driver.synth_of_env () with
          | exception Invalid_argument _ -> ()
          | _ -> Alcotest.fail (Printf.sprintf "%S should be rejected" bad)))
    [ "bogus>=1"; "flows>=x"; "flows"; "nonsense" ]

let test_committed_corpus_green () =
  (* The committed regression corpus (test/corpus/*.repro, staged next
     to the test binary by dune) must replay green — every banked
     failure stays fixed. *)
  let dir = "corpus" in
  let entries = Corpus.load_dir dir in
  Alcotest.(check bool) "committed corpus is non-empty" true (entries <> []);
  let still_failing = Driver.replay_dir dir in
  List.iter
    (fun (path, (f : Oracle.failure)) ->
      Printf.eprintf "replay %s: %s: %s\n" path f.Oracle.oracle f.Oracle.detail)
    still_failing;
  Alcotest.(check int) "all repros replay green" 0 (List.length still_failing)

let suites =
  [
    ( "fuzz.generator",
      [
        Alcotest.test_case "every scenario builds" `Quick test_generator_builds;
        Alcotest.test_case "seed determines scenario" `Quick
          test_generator_deterministic;
        Alcotest.test_case "serialization roundtrip" `Quick
          test_scenario_roundtrip;
      ] );
    ( "fuzz.oracle",
      [
        Alcotest.test_case "oracles pass on healthy code" `Slow
          test_oracles_pass_smoke;
        Alcotest.test_case "run_once reports events" `Quick
          test_run_once_reports_events;
      ] );
    ( "fuzz.driver",
      [
        Alcotest.test_case "campaign is deterministic" `Slow
          test_campaign_deterministic;
        Alcotest.test_case "synthetic failure shrinks and banks" `Slow
          test_synthetic_failure_shrinks;
        Alcotest.test_case "shrink preserves oracle, not size" `Quick
          test_shrink_size_decreases;
        Alcotest.test_case "PCC_FUZZ_SYNTH parsing" `Quick test_synth_of_env;
      ] );
    ( "fuzz.corpus",
      [
        Alcotest.test_case "repro file roundtrip" `Quick test_corpus_roundtrip;
        Alcotest.test_case "save/load_dir" `Quick test_corpus_save_load_dir;
        Alcotest.test_case "committed corpus replays green" `Slow
          test_committed_corpus_green;
      ] );
  ]
