open Pcc_sim
open Pcc_scenario

(* ------------------------------------------------------------------ *)
(* Shared validation: every malformed input is rejected in one place
   (Topology.build) with Invalid_argument, for direct graph builds and
   through both wrappers. *)

let reject name thunk =
  Alcotest.(check bool) name true
    (try
       ignore (thunk ());
       false
     with Invalid_argument _ -> true)

let l ?name ?delay ?buffer ?queue ?loss ?jitter ~src ~dst bw =
  Topology.link ?name ?delay ?buffer ?queue ?loss ?jitter ~src ~dst
    ~bandwidth:bw ()

let build_with ?nodes ?(links = [ l ~src:0 ~dst:1 (Units.mbps 10.) ])
    ?rev_loss ?(flows = []) () =
  let engine = Engine.create () in
  Topology.build engine ~rng:(Rng.create 1) ?nodes ~links ?rev_loss ~flows ()

let test_link_validation () =
  reject "empty links" (fun () -> build_with ~links:[] ());
  reject "negative endpoint" (fun () ->
      build_with ~links:[ l ~src:(-1) ~dst:0 (Units.mbps 10.) ] ());
  reject "self loop" (fun () ->
      build_with ~links:[ l ~src:1 ~dst:1 (Units.mbps 10.) ] ());
  reject "duplicate edge" (fun () ->
      build_with
        ~links:
          [ l ~src:0 ~dst:1 (Units.mbps 10.); l ~src:0 ~dst:1 (Units.mbps 5.) ]
        ());
  reject "zero bandwidth" (fun () ->
      build_with ~links:[ l ~src:0 ~dst:1 0. ] ());
  reject "negative delay" (fun () ->
      build_with ~links:[ l ~delay:(-0.001) ~src:0 ~dst:1 (Units.mbps 10.) ] ());
  reject "zero buffer" (fun () ->
      build_with ~links:[ l ~buffer:0 ~src:0 ~dst:1 (Units.mbps 10.) ] ());
  reject "loss above 1" (fun () ->
      build_with ~links:[ l ~loss:1.5 ~src:0 ~dst:1 (Units.mbps 10.) ] ());
  reject "negative jitter" (fun () ->
      build_with ~links:[ l ~jitter:(-1.) ~src:0 ~dst:1 (Units.mbps 10.) ] ());
  reject "rev_loss above 1" (fun () -> build_with ~rev_loss:2. ());
  reject "node count below links" (fun () -> build_with ~nodes:1 ());
  (* An Infinite queue has no byte capacity, so buffer is not checked. *)
  ignore
    (build_with
       ~links:[ l ~queue:Topology.Infinite ~buffer:0 ~src:0 ~dst:1 (Units.mbps 10.) ]
       ())

let test_flow_validation () =
  let flow ?start_at ?stop_at ?size ?extra_rtt ?rev_route ~route () =
    Topology.flow ?start_at ?stop_at ?size ?extra_rtt ?rev_route ~route
      (Transport.tcp "newreno")
  in
  reject "negative start_at" (fun () ->
      build_with ~flows:[ flow ~start_at:(-1.) ~route:[ 0; 1 ] () ] ());
  reject "stop_at before start_at" (fun () ->
      build_with ~flows:[ flow ~start_at:2. ~stop_at:1. ~route:[ 0; 1 ] () ] ());
  reject "stop_at equal to start_at" (fun () ->
      build_with ~flows:[ flow ~start_at:2. ~stop_at:2. ~route:[ 0; 1 ] () ] ());
  reject "zero size" (fun () ->
      build_with ~flows:[ flow ~size:0 ~route:[ 0; 1 ] () ] ());
  reject "negative extra_rtt" (fun () ->
      build_with ~flows:[ flow ~extra_rtt:(-0.01) ~route:[ 0; 1 ] () ] ());
  reject "one-node route" (fun () ->
      build_with ~flows:[ flow ~route:[ 0 ] () ] ());
  reject "route outside graph" (fun () ->
      build_with ~flows:[ flow ~route:[ 0; 7 ] () ] ());
  reject "route with no link" (fun () ->
      build_with ~flows:[ flow ~route:[ 1; 0 ] () ] ());
  reject "route revisits a node" (fun () ->
      build_with
        ~links:
          [ l ~src:0 ~dst:1 (Units.mbps 10.); l ~src:1 ~dst:0 (Units.mbps 10.) ]
        ~flows:[ flow ~route:[ 0; 1; 0 ] () ]
        ());
  reject "reverse route wrong endpoints" (fun () ->
      build_with
        ~links:
          [
            l ~src:0 ~dst:1 (Units.mbps 10.);
            l ~src:1 ~dst:2 (Units.mbps 10.);
            l ~src:2 ~dst:1 (Units.mbps 10.);
          ]
        ~flows:[ flow ~route:[ 0; 1 ] ~rev_route:[ 2; 1 ] () ]
        ())

let test_wrapper_validation () =
  (* The wrappers inherit the shared checks the old builders lacked
     (Path) or hand-rolled (Multihop). *)
  let engine = Engine.create () in
  let rng = Rng.create 1 in
  reject "Path: stop before start" (fun () ->
      Path.build engine ~rng ~bandwidth:(Units.mbps 10.) ~rtt:0.03
        ~buffer:(Units.kib 64)
        ~flows:[ Path.flow ~start_at:5. ~stop_at:1. (Transport.pcc ()) ]
        ());
  reject "Path: zero size" (fun () ->
      Path.build engine ~rng ~bandwidth:(Units.mbps 10.) ~rtt:0.03
        ~buffer:(Units.kib 64)
        ~flows:[ Path.flow ~size:0 (Transport.pcc ()) ]
        ());
  reject "Multihop: enter = exit" (fun () ->
      Multihop.build engine ~rng
        ~hops:[ Multihop.hop ~bandwidth:(Units.mbps 10.) () ]
        ~flows:[ Multihop.flow ~enter:0 ~exit:0 (Transport.pcc ()) ]
        ());
  reject "Multihop: backwards flow" (fun () ->
      Multihop.build engine ~rng
        ~hops:
          [
            Multihop.hop ~bandwidth:(Units.mbps 10.) ();
            Multihop.hop ~bandwidth:(Units.mbps 10.) ();
          ]
        ~flows:[ Multihop.flow ~enter:2 ~exit:0 (Transport.pcc ()) ]
        ());
  reject "Multihop: negative enter" (fun () ->
      Multihop.build engine ~rng
        ~hops:[ Multihop.hop ~bandwidth:(Units.mbps 10.) () ]
        ~flows:[ Multihop.flow ~enter:(-1) ~exit:1 (Transport.pcc ()) ]
        ())

(* ------------------------------------------------------------------ *)
(* FCT dedup: a sized flow through Path and through a single-hop
   Multihop with identical parameters records the identical completion
   time, because both wrappers share Topology's lifecycle. *)

let test_fct_identical_through_wrappers () =
  let bandwidth = Units.mbps 20. in
  let buffer = 64 * Units.mss in
  let size = 400 * Units.mss in
  let spec = Transport.tcp "newreno" in
  let via_path () =
    let engine = Engine.create () in
    let rng = Rng.create 11 in
    let path =
      Path.build engine ~rng ~bandwidth ~rtt:0.02 ~buffer
        ~flows:[ Path.flow ~size spec ]
        ()
    in
    Engine.run ~until:60. engine;
    let f = (Path.flows path).(0) in
    (f.Path.fct, Path.goodput_bytes f)
  in
  let via_multihop () =
    let engine = Engine.create () in
    let rng = Rng.create 11 in
    let mh =
      Multihop.build engine ~rng
        ~hops:[ Multihop.hop ~bandwidth ~delay:0.01 ~buffer () ]
        ~flows:[ Multihop.flow ~enter:0 ~exit:1 ~size spec ]
        ()
    in
    Engine.run ~until:60. engine;
    let f = (Multihop.flows mh).(0) in
    (f.Multihop.fct, Multihop.goodput_bytes f)
  in
  let fct_p, good_p = via_path () in
  let fct_m, good_m = via_multihop () in
  Alcotest.(check bool) "both completed" true
    (fct_p <> None && fct_m <> None);
  Alcotest.(check (option (float 1e-12))) "identical FCT" fct_p fct_m;
  Alcotest.(check int) "identical goodput" good_p good_m

(* Same-seed rebuilds of one graph reproduce byte-identical results. *)
let test_deterministic_rebuild () =
  let once () =
    let engine = Engine.create () in
    let topo =
      Topology.build engine ~rng:(Rng.create 7)
        ~links:
          [
            l ~name:"a" ~src:0 ~dst:1 (Units.mbps 30.);
            l ~name:"b" ~src:1 ~dst:2 (Units.mbps 12.);
          ]
        ~flows:
          [
            Topology.flow ~route:[ 0; 1; 2 ] (Transport.pcc ());
            Topology.flow ~route:[ 1; 2 ] (Transport.tcp "cubic");
          ]
        ()
    in
    Engine.run ~until:10. engine;
    Array.map Topology.goodput_bytes (Topology.flows topo)
  in
  Alcotest.(check (array int)) "same goodputs" (once ()) (once ())

(* ------------------------------------------------------------------ *)
(* Parking-lot conservation on a 3-hop asymmetric chain: no flow beats
   the narrowest link on its route, and no link carries more than its
   capacity across all flows sharing it. *)

let test_parking_lot_conservation () =
  let engine = Engine.create () in
  let duration = 20. in
  let bw = [| Units.mbps 20.; Units.mbps 8.; Units.mbps 15. |] in
  let topo =
    Topology.build engine ~rng:(Rng.create 5)
      ~links:
        [
          l ~name:"hop0" ~src:0 ~dst:1 bw.(0);
          l ~name:"hop1" ~src:1 ~dst:2 bw.(1);
          l ~name:"hop2" ~src:2 ~dst:3 bw.(2);
        ]
      ~flows:
        [
          Topology.flow ~label:"long" ~route:[ 0; 1; 2; 3 ] (Transport.pcc ());
          Topology.flow ~label:"local0" ~route:[ 0; 1 ] (Transport.pcc ());
          Topology.flow ~label:"local2" ~route:[ 2; 3 ] (Transport.tcp "cubic");
        ]
      ()
  in
  let inv = Invariant.attach_topology topo in
  Engine.run ~until:duration engine;
  Invariant.check_now inv;
  let flows = Topology.flows topo in
  let rate i = float_of_int (Topology.goodput_bytes flows.(i) * 8) /. duration in
  (* Per-flow goodput bounded by the narrowest link on its route. *)
  Array.iteri
    (fun i (f : Topology.built_flow) ->
      let cap =
        List.fold_left
          (fun acc id -> Float.min acc bw.(id))
          infinity
          (Topology.route_links topo ~flow:i)
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s within route capacity" f.Topology.def.Topology.label)
        true
        (rate i <= cap *. 1.01))
    flows;
  (* Per-link: the goodputs of all flows crossing a link sum to at most
     its bandwidth. *)
  for link = 0 to Topology.num_links topo - 1 do
    let total = ref 0. in
    Array.iteri
      (fun i _ ->
        if List.mem link (Topology.route_links topo ~flow:i) then
          total := !total +. rate i)
      flows;
    Alcotest.(check bool)
      (Printf.sprintf "link %d utilization sum within capacity" link)
      true
      (!total <= bw.(link) *. 1.01)
  done;
  (* The chain is asymmetric on purpose: the long flow is held below the
     middle hop while local0 still uses hop0's surplus. *)
  Alcotest.(check bool) "long flow saw the 8 Mbps hop" true
    (rate 0 <= bw.(1) *. 1.01);
  Alcotest.(check bool) "hop0 local exploits surplus" true (rate 1 > rate 0)

(* ------------------------------------------------------------------ *)
(* Congested reverse path: with acks squeezed through a link ~100x
   narrower than the data direction, CUBIC's ack clock starves and
   goodput collapses even though the forward link has idle capacity.
   The flat Path API cannot express this shape. *)

let test_congested_reverse_path_degrades_cubic () =
  let bandwidth = Units.mbps 50. in
  let duration = 15. in
  let fwd ~name = l ~name ~delay:0.015 ~src:0 ~dst:1 bandwidth in
  let run ~links ~rev_route =
    let engine = Engine.create () in
    let topo =
      Topology.build engine ~rng:(Rng.create 3) ~links
        ~flows:[ Topology.flow ~route:[ 0; 1 ] ?rev_route (Transport.tcp "cubic") ]
        ()
    in
    Engine.run ~until:duration engine;
    let goodput =
      float_of_int (Topology.goodput_bytes (Topology.flows topo).(0) * 8)
      /. duration
    in
    let util link =
      Pcc_net.Link.busy_time (Topology.link_at topo link) /. duration
    in
    (goodput, util)
  in
  let ideal_goodput, ideal_util =
    run ~links:[ fwd ~name:"forward" ] ~rev_route:None
  in
  let congested_goodput, congested_util =
    run
      ~links:
        [
          fwd ~name:"forward";
          l ~name:"ackpath" ~delay:0.015 ~buffer:(Units.kib 4) ~src:1 ~dst:0
            (Units.mbps 0.5);
        ]
      ~rev_route:(Some [ 1; 0 ])
  in
  (* Sanity: the baseline actually fills the forward link. *)
  Alcotest.(check bool) "ideal reverse fills the link" true
    (ideal_goodput > 0.8 *. bandwidth && ideal_util 0 > 0.8);
  Alcotest.(check bool) "congested acks degrade goodput" true
    (congested_goodput < 0.5 *. ideal_goodput);
  (* The bottleneck is the ack path, not the data path: the reverse link
     is saturated while goodput leaves most of the forward capacity
     unused (the forward link's busy_time stays high only because the
     starved ack clock triggers redundant retransmissions). *)
  Alcotest.(check bool) "ack path saturated" true (congested_util 1 > 0.9);
  Alcotest.(check bool) "forward capacity mostly unused by goodput" true
    (congested_goodput < 0.4 *. bandwidth)

(* ------------------------------------------------------------------ *)
(* Dynamic knobs and accessors. *)

let test_knobs_and_accessors () =
  let engine = Engine.create () in
  let topo =
    Topology.build engine ~rng:(Rng.create 2)
      ~links:
        [
          l ~name:"up" ~src:0 ~dst:1 (Units.mbps 10.);
          l ~name:"down" ~src:1 ~dst:0 (Units.mbps 10.);
        ]
      ~flows:
        [
          Topology.flow ~route:[ 0; 1 ] ~rev_route:[ 1; 0 ]
            (Transport.tcp "newreno");
          Topology.flow ~route:[ 0; 1 ] (Transport.tcp "newreno");
        ]
      ()
  in
  Alcotest.(check int) "num_nodes" 2 (Topology.num_nodes topo);
  Alcotest.(check int) "num_links" 2 (Topology.num_links topo);
  Alcotest.(check string) "link_name" "down" (Topology.link_name topo 1);
  Alcotest.(check (option int)) "link_between" (Some 1)
    (Topology.link_between topo 1 0);
  Alcotest.(check (option int)) "no such edge" None
    (Topology.link_between topo 0 0);
  Alcotest.(check (list int)) "route_links" [ 0 ]
    (Topology.route_links topo ~flow:0);
  Topology.set_link_bandwidth topo 0 (Units.mbps 5.);
  Alcotest.(check (float 1e-6)) "bandwidth knob" (Units.mbps 5.)
    (Pcc_net.Link.bandwidth (Topology.link_at topo 0));
  Topology.set_link_delay topo 0 0.042;
  Alcotest.(check (float 1e-12)) "delay knob" 0.042
    (Pcc_net.Link.delay (Topology.link_at topo 0));
  Topology.set_link_loss topo 0 0.25;
  Alcotest.(check (float 1e-12)) "loss knob" 0.25
    (Pcc_net.Link.loss (Topology.link_at topo 0));
  Topology.set_rev_loss topo 0.3;
  Alcotest.(check (float 1e-12)) "rev_loss stored" 0.3
    (Topology.rev_loss topo);
  reject "set_rev_delay on routed reverse" (fun () ->
      Topology.set_rev_delay topo ~flow:0 0.01);
  Topology.set_rev_delay topo ~flow:1 0.01;
  reject "link id out of range" (fun () ->
      Topology.set_link_bandwidth topo 9 (Units.mbps 1.));
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  let d = Topology.describe topo in
  Alcotest.(check bool) "describe mentions nodes" true (contains d "2 nodes");
  Alcotest.(check bool) "describe names links" true (contains d "down")

let suites =
  [
    ( "scenario.topology",
      [
        Alcotest.test_case "link validation" `Quick test_link_validation;
        Alcotest.test_case "flow validation" `Quick test_flow_validation;
        Alcotest.test_case "wrapper validation" `Quick test_wrapper_validation;
        Alcotest.test_case "fct identical through wrappers" `Slow
          test_fct_identical_through_wrappers;
        Alcotest.test_case "deterministic rebuild" `Slow
          test_deterministic_rebuild;
        Alcotest.test_case "parking-lot conservation" `Slow
          test_parking_lot_conservation;
        Alcotest.test_case "congested reverse path" `Slow
          test_congested_reverse_path_degrades_cubic;
        Alcotest.test_case "knobs and accessors" `Quick
          test_knobs_and_accessors;
      ] );
  ]
