open Pcc_sim
open Pcc_scenario

(* Integration tests of the controller family: Vivace's gradient ascent
   and the Proteus scavenger/primary dynamics, driven through the same
   scenario layer the experiments use. *)

let named n =
  match Transport.of_name n with Ok s -> s | Error m -> failwith m

let count_events c kind =
  Array.fold_left
    (fun n (e : Pcc_trace.Event.record) -> if e.kind = kind then n + 1 else n)
    0
    (Pcc_trace.Collector.events c)

(* Vivace converges on a clean static link: after the start-up transient
   the gradient walk holds the flow near capacity, and the controller
   records its decisions as Gradient_step trace events. *)
let test_vivace_gradient_convergence () =
  let c = Pcc_trace.Collector.create ~capacity:65536 () in
  Pcc_trace.Collector.install c;
  Fun.protect ~finally:Pcc_trace.Collector.uninstall @@ fun () ->
  let engine = Engine.create () in
  let rng = Rng.create 42 in
  let bw = Units.mbps 30. in
  let path =
    Path.build engine ~rng ~bandwidth:bw ~rtt:0.03
      ~buffer:(Units.bdp_bytes ~rate:bw ~rtt:0.03)
      ~flows:[ Path.flow (named "pcc-vivace") ]
      ()
  in
  Engine.run ~until:10. engine;
  let before = Path.goodput_bytes (Path.flows path).(0) in
  Engine.run ~until:20. engine;
  let mbps =
    float_of_int ((Path.goodput_bytes (Path.flows path).(0) - before) * 8)
    /. 10. /. 1e6
  in
  Alcotest.(check bool) "steady state near capacity" true (mbps > 24.);
  Alcotest.(check bool) "gradient steps traced" true
    (count_events c Pcc_trace.Event.Gradient_step > 20)

(* The defining Proteus behaviour, end to end: a scavenger saturates an
   idle bottleneck, collapses while a primary holds it, and reclaims the
   bandwidth after the primary departs. Class flips surface as
   Utility_switch trace events. *)
let test_scavenger_yields_and_reclaims () =
  let c = Pcc_trace.Collector.create ~capacity:65536 () in
  Pcc_trace.Collector.install c;
  Fun.protect ~finally:Pcc_trace.Collector.uninstall @@ fun () ->
  let engine = Engine.create () in
  let rng = Rng.create 42 in
  let bw = Units.mbps 30. in
  let w = 5. in
  let path =
    Path.build engine ~rng ~bandwidth:bw ~rtt:0.03
      ~buffer:(Units.bdp_bytes ~rate:bw ~rtt:0.03)
      ~flows:
        [
          Path.flow ~label:"background" (named "pcc-proteus-scavenger");
          Path.flow ~label:"primary" ~start_at:(2. *. w) ~stop_at:(3. *. w)
            (named "pcc-proteus");
        ]
      ()
  in
  let bg = (Path.flows path).(0) in
  let sample t0 t1 =
    Engine.run ~until:t0 engine;
    let b = Path.goodput_bytes bg in
    Engine.run ~until:t1 engine;
    float_of_int ((Path.goodput_bytes bg - b) * 8) /. (t1 -. t0) /. 1e6
  in
  let before = sample (1.5 *. w) (2. *. w) in
  let during = sample (2.5 *. w) (3. *. w) in
  let after = sample (4.5 *. w) (5. *. w) in
  Alcotest.(check bool) "solo scavenger saturates the link" true (before > 20.);
  Alcotest.(check bool)
    (Printf.sprintf "collapses under the primary (%.1f -> %.1f Mbps)" before
       during)
    true
    (during < before /. 3.);
  Alcotest.(check bool)
    (Printf.sprintf "reclaims after departure (%.1f Mbps)" after)
    true
    (after > 0.7 *. before);
  Alcotest.(check bool) "class switches traced" true
    (count_events c Pcc_trace.Event.Utility_switch > 0)

(* Scenario.generate's transport menu restriction: every generated flow
   draws from the requested subset, and bad menus are rejected. *)
let test_generate_menu_restriction () =
  let menu = [ "pcc-vivace"; "pcc-proteus-scavenger" ] in
  let rng = Rng.create 9 in
  for _ = 1 to 25 do
    let s = Scenario.generate ~menu ~rng () in
    List.iter
      (fun f ->
        Alcotest.(check bool)
          ("menu respected: " ^ f.Scenario.transport)
          true
          (List.mem f.Scenario.transport menu))
      s.Scenario.flows
  done;
  (match Scenario.generate ~menu:[] ~rng () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty menu accepted");
  match Scenario.generate ~menu:[ "bogus-transport" ] ~rng () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown transport accepted"

(* Persisted-scenario version compatibility. The header is a 1-byte
   length + 6-byte "PCCSCN" magic, then the version as a zig-zag varint
   at byte 7: version 2 encodes as 0x04, version 1 as 0x02, version 3
   as 0x06. Version 1 blobs are layout-identical and must parse to the
   same scenario; unknown versions must be rejected at the header. *)
let test_persist_version_compat () =
  let rng = Rng.create 4 in
  let s = Scenario.generate ~rng () in
  let blob = Scenario.to_string s in
  Alcotest.(check char) "current blobs are version 2" '\x04' blob.[7];
  let v1 = Bytes.of_string blob in
  Bytes.set v1 7 '\x02';
  let parsed = Scenario.of_string (Bytes.to_string v1) in
  Alcotest.(check string) "v1 blob parses to the same scenario" blob
    (Scenario.to_string parsed);
  let v3 = Bytes.of_string blob in
  Bytes.set v3 7 '\x06';
  match Scenario.of_string (Bytes.to_string v3) with
  | exception Persist.Corrupt _ -> ()
  | _ -> Alcotest.fail "unsupported version accepted"

let suites =
  [
    ( "pcc.controllers",
      [
        Alcotest.test_case "vivace gradient convergence" `Quick
          test_vivace_gradient_convergence;
        Alcotest.test_case "scavenger yields and reclaims" `Quick
          test_scavenger_yields_and_reclaims;
        Alcotest.test_case "generate menu restriction" `Quick
          test_generate_menu_restriction;
        Alcotest.test_case "persist version compat" `Quick
          test_persist_version_compat;
      ] );
  ]
