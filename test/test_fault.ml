open Pcc_sim
open Pcc_scenario

(* The fault-injection subsystem itself: schedule algebra, the seeded
   chaos generator's determinism contract, knob restoration, the runtime
   invariant checker, and the recovery metrics. *)

let build_path ?(seed = 31) ?(rev_loss = 0.) () =
  let engine = Engine.create () in
  let rng = Rng.create seed in
  let bandwidth = Units.mbps 20. in
  let path =
    Path.build engine ~rng ~bandwidth ~rtt:0.03
      ~buffer:(Units.bdp_bytes ~rate:bandwidth ~rtt:0.03)
      ~rev_loss
      ~flows:[ Path.flow (Transport.pcc ()) ]
      ()
  in
  (engine, path)

(* ------------------------------------------------------------------ *)
(* Schedule algebra *)

let test_schedule_helpers () =
  let flap = Fault.Bandwidth_flap { count = 3; period = 0.5; factor = 0.2 } in
  Alcotest.(check (float 1e-9)) "flap duration" 1.5 (Fault.duration flap);
  let ev = Fault.at 4. (Fault.Blackout { duration = 2. }) in
  let t0, t1 = Fault.window ev in
  Alcotest.(check (pair (float 1e-9) (float 1e-9))) "window" (4., 6.) (t0, t1);
  (match Fault.windows [ ev ] with
  | [ (label, 4., 6.) ] ->
    Alcotest.(check bool) "label mentions blackout" true
      (String.length label >= 8 && String.sub label 0 8 = "blackout")
  | _ -> Alcotest.fail "windows shape");
  Alcotest.check_raises "negative time rejected"
    (Invalid_argument "Fault.at: time must be non-negative") (fun () ->
      ignore (Fault.at (-1.) (Fault.Blackout { duration = 1. })))

let test_chaos_deterministic () =
  let gen seed =
    Fault.chaos ~rng:(Rng.create seed) ~rate:0.2 ~duration:120. ()
  in
  Alcotest.(check bool) "same seed, same gauntlet" true (gen 42 = gen 42);
  Alcotest.(check bool) "different seeds differ" true (gen 42 <> gen 43);
  let sched = gen 42 in
  Alcotest.(check bool) "produces faults" true (List.length sched >= 3);
  (* Non-overlapping by construction, with the recovery gap, inside the
     horizon, and strictly after the warm-up. *)
  let rec check_gaps = function
    | a :: (b :: _ as rest) ->
      let _, stop_a = Fault.window a in
      Alcotest.(check bool) "gap respected" true (b.Fault.at >= stop_a +. 4.);
      check_gaps rest
    | _ -> ()
  in
  check_gaps sched;
  List.iter
    (fun ev ->
      let start, stop = Fault.window ev in
      Alcotest.(check bool) "after warm-up" true (start > 5.);
      Alcotest.(check bool) "ends inside horizon" true (stop <= 120.))
    sched

let test_chaos_kind_pool () =
  let kinds = [| Fault.Blackout { duration = 1. } |] in
  let sched =
    Fault.chaos ~rng:(Rng.create 7) ~rate:0.5 ~kinds ~duration:60. ()
  in
  Alcotest.(check bool) "nonempty" true (sched <> []);
  List.iter
    (fun ev ->
      match ev.Fault.kind with
      | Fault.Blackout _ -> ()
      | _ -> Alcotest.fail "kind outside the pool")
    sched

(* A pinned chaos(seed=42) schedule: the generator feeds reproduction
   commands and CI chaos runs, so a drift in its draw order silently
   changes every "same seed" rerun. Regenerate the strings below only on
   a deliberate, versioned change to the generator. *)
let chaos_42_golden =
  [
    "jitter-burst 7ms 1.10s 9.5332 10.6292";
    "blackout 0.92s 34.3971 35.3161";
    "bw-flap x0.20 4x1.26s 40.1458 45.2035";
    "jitter-burst 6ms 2.71s 60.7154 63.4233";
    "jitter-burst 6ms 2.33s 67.7742 70.1032";
    "reordering p=0.11 +32ms 1.93s 76.1779 78.1084";
    "bw-flap x0.36 3x1.45s 97.3668 101.7216";
    "bw-flap x0.18 3x0.87s 106.0829 108.6892";
  ]

let test_chaos_seed_stability_golden () =
  let sched = Fault.chaos ~rng:(Rng.create 42) ~rate:0.2 ~duration:120. () in
  let got =
    List.map
      (fun (label, t0, t1) -> Printf.sprintf "%s %.4f %.4f" label t0 t1)
      (Fault.windows sched)
  in
  Alcotest.(check (list string))
    "chaos(seed=42, rate=0.2, 120s) schedule is frozen" chaos_42_golden got

(* ------------------------------------------------------------------ *)
(* Injection and restoration *)

let test_inject_restores_episodes () =
  (* Jitter / duplication / reordering faults flip their knob on and fully
     off again; no traffic needed to observe the knobs. *)
  let engine, path = build_path () in
  let link = Path.bottleneck path in
  Fault.inject_path path
    [
      Fault.at 1. (Fault.Jitter_burst { duration = 1.; jitter = 0.004 });
      Fault.at 3. (Fault.Duplication_episode { duration = 1.; prob = 0.5 });
      Fault.at 5.
        (Fault.Reordering_episode { duration = 1.; prob = 0.5; extra = 0.02 });
    ];
  Engine.run ~until:1.5 engine;
  Alcotest.(check (float 1e-9)) "jitter on" 0.004 (Pcc_net.Link.jitter link);
  Engine.run ~until:2.5 engine;
  Alcotest.(check (float 1e-9)) "jitter off" 0. (Pcc_net.Link.jitter link);
  Engine.run ~until:10. engine;
  Alcotest.(check bool) "flow survived the episodes" true
    (Path.goodput_bytes (Path.flows path).(0) > 0)

let test_reverse_blackhole_restores_baseline () =
  let engine, path = build_path ~rev_loss:0.1 () in
  Fault.inject_path path
    [ Fault.at 1. (Fault.Reverse_blackhole { duration = 0.5 }) ];
  Engine.run ~until:1.2 engine;
  Alcotest.(check (float 1e-9)) "hole open" 1. (Path.rev_loss path);
  Engine.run ~until:2. engine;
  Alcotest.(check (float 1e-9)) "baseline ack loss restored" 0.1
    (Path.rev_loss path)

let test_zero_duration_fault_is_a_net_noop () =
  (* Onset and restoration land on the same timestamp; FIFO tie-break
     runs them in that order, so a zero-duration fault must leave every
     knob at its baseline and never wedge the link. *)
  let engine, path = build_path () in
  let link = Path.bottleneck path in
  Alcotest.(check (pair (float 1e-9) (float 1e-9)))
    "zero-duration window is a point" (1., 1.)
    (Fault.window (Fault.at 1. (Fault.Blackout { duration = 0. })));
  Fault.inject_path path
    [
      Fault.at 1. (Fault.Blackout { duration = 0. });
      Fault.at 2. (Fault.Jitter_burst { duration = 0.; jitter = 0.01 });
      Fault.at 3. (Fault.Loss_burst { duration = 0.; loss = 0.9 });
    ];
  Engine.run ~until:6. engine;
  Alcotest.(check (float 1e-9)) "loss back at baseline" 0.
    (Pcc_net.Link.loss link);
  Alcotest.(check (float 1e-9)) "jitter back at baseline" 0.
    (Pcc_net.Link.jitter link);
  Alcotest.(check bool) "flow kept moving" true
    (Path.goodput_bytes (Path.flows path).(0) > 0)

let test_overlapping_bursts_on_same_link () =
  (* Two loss bursts overlapping on one link: the documented semantics
     are last-restorer-wins. Burst B snapshots the knob mid-burst-A, so
     after both windows close the link is left at A's loss — pin that,
     and the intermediate states, so a change to the snapshot discipline
     cannot slip in silently. *)
  let engine, path = build_path () in
  let link = Path.bottleneck path in
  Pcc_net.Link.set_loss link 0.01;
  Fault.inject_path path
    [
      Fault.at 1. (Fault.Loss_burst { duration = 2.; loss = 0.3 });
      Fault.at 2. (Fault.Loss_burst { duration = 2.; loss = 0.5 });
    ];
  Engine.run ~until:1.5 engine;
  Alcotest.(check (float 1e-9)) "burst A active" 0.3 (Pcc_net.Link.loss link);
  Engine.run ~until:2.5 engine;
  Alcotest.(check (float 1e-9)) "burst B overrides" 0.5
    (Pcc_net.Link.loss link);
  Engine.run ~until:3.5 engine;
  Alcotest.(check (float 1e-9)) "A's restore resets to its snapshot" 0.01
    (Pcc_net.Link.loss link);
  Engine.run ~until:4.5 engine;
  Alcotest.(check (float 1e-9))
    "B's restore wins last, leaving A's mid-burst loss" 0.3
    (Pcc_net.Link.loss link)

let test_partition_targets_one_hop () =
  let engine = Engine.create () in
  let rng = Rng.create 5 in
  let mh =
    Multihop.build engine ~rng
      ~hops:
        [
          Multihop.hop ~bandwidth:(Units.mbps 20.) ~delay:0.005 ();
          Multihop.hop ~bandwidth:(Units.mbps 20.) ~delay:0.005 ();
        ]
      ~flows:[ Multihop.flow ~enter:0 ~exit:2 (Transport.pcc ()) ]
      ()
  in
  let tgt = Fault.target_of_multihop mh in
  Fault.inject tgt [ Fault.at 1. (Fault.Partition { duration = 1.; hop = 1 }) ];
  Engine.run ~until:1.5 engine;
  let links = Multihop.links mh in
  Alcotest.(check (float 1e-9)) "hop 0 untouched" 0.
    (Pcc_net.Link.loss links.(0));
  Alcotest.(check (float 1e-9)) "hop 1 partitioned" 1.
    (Pcc_net.Link.loss links.(1));
  Engine.run ~until:3. engine;
  Alcotest.(check (float 1e-9)) "hop 1 healed" 0.
    (Pcc_net.Link.loss links.(1));
  Alcotest.check_raises "hop out of range"
    (Invalid_argument "Fault.inject: partition hop 7 outside [0,2)") (fun () ->
      Fault.inject tgt
        [ Fault.at 5. (Fault.Partition { duration = 1.; hop = 7 }) ])

(* ------------------------------------------------------------------ *)
(* Invariant checker *)

let test_invariants_pass_on_healthy_run () =
  let engine, path = build_path () in
  let inv = Invariant.attach_path path in
  Engine.run ~until:5. engine;
  Invariant.check_now inv;
  Alcotest.(check bool) "swept many times" true (Invariant.checks_run inv > 50);
  Invariant.stop inv;
  let n = Invariant.checks_run inv in
  Engine.run ~until:6. engine;
  Alcotest.(check int) "stop stops sweeping" n (Invariant.checks_run inv)

let test_invariants_pass_under_faults () =
  (* The checker must hold across every fault kind — faults perturb the
     network, never the accounting. *)
  let engine, path = build_path () in
  let inv = Invariant.attach_path path in
  Fault.inject_path path
    [
      Fault.at 1. (Fault.Loss_burst { duration = 1.; loss = 0.3 });
      Fault.at 3. (Fault.Bandwidth_cliff { duration = 1.; factor = 0.2 });
      Fault.at 5. (Fault.Duplication_episode { duration = 1.; prob = 0.3 });
      Fault.at 7.
        (Fault.Reordering_episode { duration = 1.; prob = 0.3; extra = 0.02 });
      Fault.at 9. (Fault.Delay_spike { duration = 1.; extra = 0.03 });
    ];
  Engine.run ~until:12. engine;
  Invariant.check_now inv;
  Alcotest.(check bool) "checker ran" true (Invariant.checks_run inv > 0)

let lying_queue () =
  (* An unbounded FIFO that advertises a zero-byte occupancy bound — the
     cheapest way to manufacture a real, observable invariant violation. *)
  let q = Pcc_net.Queue_disc.infinite () in
  { q with Pcc_net.Queue_disc.capacity_bytes = (fun () -> Some 0) }

let flood engine link n =
  Pcc_net.Link.set_receiver link (fun _ -> ());
  ignore
    (Engine.schedule engine ~at:0. (fun () ->
         let flow = Pcc_net.Packet.fresh_flow_id () in
         for seq = 0 to n - 1 do
           Pcc_net.Link.send link
             (Pcc_net.Packet.data ~flow ~seq ~size:1500 ~now:0. ~retx:false)
         done))

let test_invariant_catches_occupancy_violation () =
  let engine = Engine.create () in
  let rng = Rng.create 1 in
  let link =
    (* 12 kbit/s: one packet per second, so the flood sits in the queue. *)
    Pcc_net.Link.create engine ~rng ~bandwidth:12000. ~delay:0.001
      ~queue:(lying_queue ()) ()
  in
  let seen = ref [] in
  let inv =
    Invariant.attach_link engine
      ~on_violation:(fun v -> seen := v :: !seen)
      link
  in
  flood engine link 10;
  Engine.run ~until:0.2 engine;
  Alcotest.(check bool) "violation collected" true
    (List.exists (fun v -> v.Invariant.check = "occupancy") !seen);
  Invariant.stop inv

let test_violation_surfaces_as_event_error () =
  (* Default policy: the sweep raises Violation inside an engine callback,
     which the hardened dispatcher wraps with the scheduled time. *)
  let engine = Engine.create () in
  let rng = Rng.create 1 in
  let link =
    Pcc_net.Link.create engine ~rng ~bandwidth:12000. ~delay:0.001
      ~queue:(lying_queue ()) ()
  in
  ignore (Invariant.attach_link engine link);
  flood engine link 10;
  (match Engine.run ~until:0.2 engine with
  | () -> Alcotest.fail "expected Event_error"
  | exception Engine.Event_error { time; exn = Invariant.Violation v } ->
    Alcotest.(check string) "check name" "occupancy" v.Invariant.check;
    Alcotest.(check (float 1e-9)) "context time matches violation" time
      v.Invariant.time
  | exception e -> raise e);
  (* Collect policy instead records it and keeps going. *)
  Engine.set_on_error engine Engine.Collect;
  Engine.run ~until:0.3 engine;
  Alcotest.(check bool) "collected under Collect" true
    (Engine.errors engine <> [])

(* ------------------------------------------------------------------ *)
(* Recovery metrics *)

let series_of f = Array.init 121 (fun i ->
    let t = float_of_int i *. 0.25 in
    (t, f t))

let test_recovery_clean () =
  let series =
    series_of (fun t -> if t >= 10. && t < 13. then 0. else 100.)
  in
  match
    Pcc_metrics.Recovery.analyze ~series [ ("blackout", 10., 13.) ]
  with
  | [ r ] ->
    Alcotest.(check (float 1e-6)) "baseline" 100. r.Pcc_metrics.Recovery.baseline;
    Alcotest.(check (float 1e-6)) "full depth" 1. r.Pcc_metrics.Recovery.depth;
    (match r.Pcc_metrics.Recovery.time_to_recover with
    | Some ttr -> Alcotest.(check bool) "immediate recovery" true (ttr < 0.5)
    | None -> Alcotest.fail "should recover")
  | rs -> Alcotest.failf "expected 1 report, got %d" (List.length rs)

let test_recovery_partial_depth () =
  let series =
    series_of (fun t -> if t >= 10. && t < 13. then 50. else 100.)
  in
  match
    Pcc_metrics.Recovery.analyze ~series [ ("cliff", 10., 13.) ]
  with
  | [ r ] ->
    Alcotest.(check (float 1e-6)) "half depth" 0.5 r.Pcc_metrics.Recovery.depth
  | _ -> Alcotest.fail "one report"

let test_recovery_never () =
  let series = series_of (fun t -> if t >= 10. then 0. else 100.) in
  match
    Pcc_metrics.Recovery.analyze ~series [ ("blackout", 10., 13.) ]
  with
  | [ r ] ->
    Alcotest.(check bool) "no recovery" true
      (r.Pcc_metrics.Recovery.time_to_recover = None)
  | _ -> Alcotest.fail "one report"

let test_recovery_horizon_is_next_fault () =
  (* Throughput comes back at t=16 but cannot sustain the required 2 s
     before the next fault hits at t=17: the first fault must not be
     credited with a recovery that only the post-second-fault data shows. *)
  let series =
    series_of (fun t ->
        if (t >= 10. && t < 16.) || (t >= 17. && t < 19.) then 0. else 100.)
  in
  match
    Pcc_metrics.Recovery.analyze ~series
      [ ("first", 10., 12.); ("second", 17., 19.) ]
  with
  | [ a; b ] ->
    Alcotest.(check bool) "first unrecovered before second" true
      (a.Pcc_metrics.Recovery.time_to_recover = None);
    Alcotest.(check bool) "second recovers" true
      (b.Pcc_metrics.Recovery.time_to_recover <> None)
  | rs -> Alcotest.failf "expected 2 reports, got %d" (List.length rs)

let test_recovery_pp_table () =
  let series = series_of (fun _ -> 100.) in
  let reports =
    Pcc_metrics.Recovery.analyze ~series [ ("noop", 10., 11.) ]
  in
  let out = Format.asprintf "%a" Pcc_metrics.Recovery.pp_table reports in
  Alcotest.(check bool) "has header" true
    (String.length out > 0 && String.index_opt out '\n' <> None)

let suites =
  [
    ( "fault",
      [
        Alcotest.test_case "schedule helpers" `Quick test_schedule_helpers;
        Alcotest.test_case "chaos determinism" `Quick test_chaos_deterministic;
        Alcotest.test_case "chaos kind pool" `Quick test_chaos_kind_pool;
        Alcotest.test_case "chaos seed-stability golden" `Quick
          test_chaos_seed_stability_golden;
        Alcotest.test_case "zero-duration fault is a net no-op" `Quick
          test_zero_duration_fault_is_a_net_noop;
        Alcotest.test_case "overlapping bursts on one link" `Quick
          test_overlapping_bursts_on_same_link;
        Alcotest.test_case "episode restoration" `Quick
          test_inject_restores_episodes;
        Alcotest.test_case "reverse blackhole restoration" `Quick
          test_reverse_blackhole_restores_baseline;
        Alcotest.test_case "partition per hop" `Quick
          test_partition_targets_one_hop;
      ] );
    ( "fault.invariant",
      [
        Alcotest.test_case "healthy run passes" `Quick
          test_invariants_pass_on_healthy_run;
        Alcotest.test_case "holds under faults" `Slow
          test_invariants_pass_under_faults;
        Alcotest.test_case "catches occupancy violation" `Quick
          test_invariant_catches_occupancy_violation;
        Alcotest.test_case "violation carries event context" `Quick
          test_violation_surfaces_as_event_error;
      ] );
    ( "fault.recovery",
      [
        Alcotest.test_case "clean recovery" `Quick test_recovery_clean;
        Alcotest.test_case "partial depth" `Quick test_recovery_partial_depth;
        Alcotest.test_case "never recovers" `Quick test_recovery_never;
        Alcotest.test_case "horizon is next fault" `Quick
          test_recovery_horizon_is_next_fault;
        Alcotest.test_case "table rendering" `Quick test_recovery_pp_table;
      ] );
  ]
