open Pcc_sim
open Pcc_scenario

(* ------------------------------------------------------------------ *)
(* Partitioner: pure, deterministic, respects the minimum cut delay. *)

let test_partition_fuse () =
  (* 0 -1us- 1 -5ms- 2: the fast edge can never be cut. *)
  let input =
    {
      Partition.nodes = 3;
      edges = [ (0, 1, 1e-6); (1, 2, 0.005) ];
      routes = [ [ 0; 1; 2 ] ];
    }
  in
  let r = Partition.partition ~shards:3 input in
  Alcotest.(check int) "fast edge fused" r.Partition.shard_of.(0)
    r.Partition.shard_of.(1);
  Alcotest.(check bool) "slow edge cut" true
    (r.Partition.shard_of.(1) <> r.Partition.shard_of.(2));
  Alcotest.(check int) "one cut link" 1 r.Partition.cut_links

let test_partition_deterministic () =
  let input =
    {
      Partition.nodes = 8;
      edges =
        List.init 7 (fun i -> (i, i + 1, if i mod 2 = 0 then 0.002 else 0.0001));
      routes = [ [ 0; 1; 2; 3 ]; [ 4; 5; 6; 7 ]; [ 2; 3; 4 ] ];
    }
  in
  let a = Partition.partition ~shards:4 input in
  let b = Partition.partition ~shards:4 input in
  Alcotest.(check (array int)) "same assignment" a.Partition.shard_of
    b.Partition.shard_of;
  (* No fused pair may be split. *)
  List.iter
    (fun (s, d, delay) ->
      if delay < 0.0005 then
        Alcotest.(check int)
          (Printf.sprintf "edge %d-%d kept together" s d)
          a.Partition.shard_of.(s) a.Partition.shard_of.(d))
    input.Partition.edges

let test_partition_validation () =
  let reject name thunk =
    Alcotest.(check bool) name true
      (try
         ignore (thunk ());
         false
       with Invalid_argument _ -> true)
  in
  let input =
    { Partition.nodes = 2; edges = [ (0, 1, 0.01) ]; routes = [ [ 0; 1 ] ] }
  in
  reject "zero shards" (fun () -> Partition.partition ~shards:0 input);
  reject "zero nodes" (fun () ->
      Partition.partition ~shards:1 { input with Partition.nodes = 0 });
  reject "edge out of range" (fun () ->
      Partition.partition ~shards:1
        { input with Partition.edges = [ (0, 5, 0.01) ] });
  reject "route out of range" (fun () ->
      Partition.partition ~shards:1
        { input with Partition.routes = [ [ 0; 9 ] ] })

let test_partition_clusters () =
  (* Four chained dumbbells with 1 ms inter-cluster links must spread
     over all four shards. *)
  let head c = 2 * c and tail c = (2 * c) + 1 in
  let edges =
    List.init 4 (fun c -> (head c, tail c, 0.005))
    @ List.init 3 (fun c -> (tail c, head (c + 1), 0.001))
  in
  let routes =
    List.concat
      (List.init 4 (fun c -> List.init 8 (fun _ -> [ head c; tail c ])))
  in
  let r = Partition.partition ~shards:4 { Partition.nodes = 8; edges; routes } in
  Alcotest.(check int) "all four shards populated" 4 r.Partition.shards_used

(* ------------------------------------------------------------------ *)
(* Hub mechanics: channels, floors, controls. *)

let test_channel_validation () =
  let hub = Shard.create ~shards:2 () in
  let reject name thunk =
    Alcotest.(check bool) name true
      (try
         ignore (thunk ());
         false
       with Invalid_argument _ -> true)
  in
  reject "zero floor" (fun () ->
      Shard.channel hub ~src:0 ~dst:1 ~floor:0. ~inject:(fun ~arrival:_ ~sent:_ () ->
          ()));
  reject "equal shards" (fun () ->
      Shard.channel hub ~src:1 ~dst:1 ~floor:0.001
        ~inject:(fun ~arrival:_ ~sent:_ () -> ()));
  reject "shard out of range" (fun () ->
      Shard.channel hub ~src:0 ~dst:2 ~floor:0.001
        ~inject:(fun ~arrival:_ ~sent:_ () -> ()))

let test_send_floor () =
  let hub = Shard.create ~shards:2 () in
  let ch =
    Shard.channel hub ~src:0 ~dst:1 ~floor:0.001 ~inject:(fun ~arrival:_ ~sent:_ () ->
        ())
  in
  Alcotest.(check bool) "below-floor send rejected" true
    (try
       Shard.send ch ~now:0. ~arrival:0.0005 ();
       false
     with Shard.Shard_error _ -> true);
  (* At exactly now + floor the send is legal. *)
  Shard.send ch ~now:0. ~arrival:0.001 ()

let test_control_ordering () =
  (* A control at time tau runs after every event strictly before tau
     and before any event at or >= tau; same-time controls run in
     registration order. *)
  let hub = Shard.create ~shards:2 () in
  let log = ref [] in
  let push tag = log := tag :: !log in
  Engine.post (Shard.engine hub 0) ~at:0.5 (fun () -> push "ev@0.5");
  Engine.post (Shard.engine hub 1) ~at:1.0 (fun () -> push "ev@1.0");
  Engine.post (Shard.engine hub 0) ~at:1.5 (fun () -> push "ev@1.5");
  Shard.at hub ~time:1.0 (fun () -> push "ctrl-a@1.0");
  Shard.at hub ~time:1.0 (fun () -> push "ctrl-b@1.0");
  (* A control may re-arm itself. *)
  Shard.at hub ~time:0.25 (fun () ->
      push "ctrl@0.25";
      Shard.at hub ~time:1.25 (fun () -> push "ctrl@1.25"));
  Shard.run hub ~until:2.0;
  Alcotest.(check (list string)) "ordering"
    [
      "ctrl@0.25"; "ev@0.5"; "ctrl-a@1.0"; "ctrl-b@1.0"; "ev@1.0"; "ctrl@1.25";
      "ev@1.5";
    ]
    (List.rev !log)

let test_clocks_parked () =
  let hub = Shard.create ~shards:3 () in
  Shard.run hub ~until:4.0;
  Array.iter
    (fun e -> Alcotest.(check (float 0.)) "clock at until" 4.0 (Engine.now e))
    (Shard.engines hub)

let test_channel_delivery_order () =
  (* Messages buffered out of order are injected in canonical (arrival,
     sent, chan, seq) order and fire at their exact arrival instants. *)
  let hub = Shard.create ~shards:2 () in
  let dst = Shard.engine hub 1 in
  let got = ref [] in
  let ch =
    Shard.channel hub ~src:0 ~dst:1 ~floor:0.01
      ~inject:(fun ~arrival ~sent v ->
        Engine.post_from dst ~sent ~at:arrival (fun () ->
            got := (v, Engine.now dst) :: !got))
  in
  (* Sender-side events emit messages with staggered arrivals. *)
  let src = Shard.engine hub 0 in
  Engine.post src ~at:0.0 (fun () ->
      Shard.send ch ~now:0.0 ~arrival:0.05 "b";
      Shard.send ch ~now:0.0 ~arrival:0.02 "a");
  Shard.run hub ~until:1.0;
  Alcotest.(check (list string)) "arrival order" [ "a"; "b" ]
    (List.rev_map fst !got);
  List.iter
    (fun (v, t) ->
      Alcotest.(check (float 0.)) ("arrival instant " ^ v)
        (if v = "a" then 0.02 else 0.05)
        t)
    !got

(* ------------------------------------------------------------------ *)
(* Pool ownership under domains. *)

let test_pool_double_release () =
  let p = Pool.create ~dummy:0 () in
  Pool.set_fire p (fun _ -> ());
  let ev = Pool.event p 7 in
  ev ();
  Alcotest.check_raises "second fire raises" Pool.Double_release ev

let test_pool_cross_domain () =
  let p = Pool.create ~dummy:0 () in
  Pool.set_fire p (fun _ -> ());
  let ev = Pool.event p 7 in
  let raised =
    Domain.join
      (Domain.spawn (fun () ->
           try
             ev ();
             false
           with Pool.Cross_domain_release -> true))
  in
  Alcotest.(check bool) "foreign fire rejected" true raised;
  (* The slot is still checked out — the rejected fire released
     nothing — and the owner can still run it. *)
  Alcotest.(check int) "slot still live" 1 (Pool.in_use p);
  ev ();
  Alcotest.(check int) "owner fire drains" 0 (Pool.in_use p)

let test_pool_adopt_handoff () =
  let p = Pool.create ~dummy:0 () in
  let hits = ref 0 in
  Pool.set_fire p (fun v -> hits := !hits + v);
  let ev = Pool.event p 5 in
  let ok =
    Domain.join
      (Domain.spawn (fun () ->
           Pool.adopt p;
           ev ();
           Pool.in_use p = 0))
  in
  Alcotest.(check bool) "adopted domain fires" true ok;
  Alcotest.(check int) "fire ran" 5 !hits;
  (* Hand the pool back to this domain, as Shard.run does at exit. *)
  Pool.adopt p;
  let ev2 = Pool.event p 1 in
  ev2 ();
  Alcotest.(check int) "owner again" 6 !hits

let test_pool_no_leak_sharded () =
  (* A pooled boundary channel (the Topology wiring pattern): the
     coordinator checks payloads in, the destination shard fires them.
     After the run every slot must be back. *)
  let hub = Shard.create ~shards:2 () in
  let dst = Shard.engine hub 1 in
  let pool = Pool.create ~dummy:(-1) () in
  let seen = ref 0 in
  Pool.set_fire pool (fun _ -> incr seen);
  Engine.add_owned dst (fun () -> Pool.adopt pool);
  let ch =
    Shard.channel hub ~src:0 ~dst:1 ~floor:0.001
      ~inject:(fun ~arrival ~sent v ->
        Engine.post_from dst ~sent ~at:arrival (Pool.event pool v))
  in
  let src = Shard.engine hub 0 in
  let n = 500 in
  for i = 0 to n - 1 do
    let at = 0.001 *. float_of_int i in
    Engine.post src ~at (fun () ->
        Shard.send ch ~now:(Engine.now src) ~arrival:(Engine.now src +. 0.002) i)
  done;
  Shard.run hub ~until:2.0;
  Alcotest.(check int) "every message delivered" n !seen;
  Alcotest.(check int) "no slot leaked" 0 (Pool.in_use pool);
  (* Same workload through domains: the worker adopts via add_owned,
     the coordinator re-adopts at run end. *)
  seen := 0;
  for i = 0 to n - 1 do
    let at = 2.0 +. (0.001 *. float_of_int i) in
    Engine.post src ~at (fun () ->
        Shard.send ch ~now:(Engine.now src) ~arrival:(Engine.now src +. 0.002) i)
  done;
  Shard.run ~mode:(Shard.Parallel 2) hub ~until:5.0;
  Alcotest.(check int) "parallel: every message delivered" n !seen;
  Alcotest.(check int) "parallel: no slot leaked" 0 (Pool.in_use pool);
  let ev = Pool.event pool 1 in
  ev ();
  Alcotest.(check bool) "coordinator owns pools again" true (!seen = n + 1)

(* ------------------------------------------------------------------ *)
(* Determinism: byte-identical state at every shard count and mode. *)

let topo_digest hub topo =
  let buf = Buffer.create 1024 in
  Array.iteri
    (fun i (f : Topology.built_flow) ->
      Printf.bprintf buf "f%d g=%d fct=%s srtt=%h\n" i
        (Topology.goodput_bytes f)
        (match f.Topology.fct with
        | Some v -> Printf.sprintf "%h" v
        | None -> "-")
        (f.Topology.sender.Pcc_net.Sender.srtt ()))
    (Topology.flows topo);
  Printf.bprintf buf "events=%d" (Shard.executed hub);
  Buffer.contents buf

let clustered ~shards ~seed ~n =
  let hub = Shard.create ~shards () in
  let topo =
    Pcc_experiments.Exp_manyflow.clustered_topology hub ~rng:(Rng.create seed)
      ~clusters:4 ~n ~bandwidth:(Units.gbps 10.) ~rtt:0.01
  in
  (hub, topo)

let test_clustered_digest () =
  let run ~shards ~mode =
    let hub, topo = clustered ~shards ~seed:11 ~n:48 in
    Shard.run ~mode hub ~until:3.0;
    topo_digest hub topo
  in
  let d1 = run ~shards:1 ~mode:Shard.Sequential in
  let d2 = run ~shards:2 ~mode:Shard.Sequential in
  let d4 = run ~shards:4 ~mode:Shard.Sequential in
  let d4p = run ~shards:4 ~mode:(Shard.Parallel 4) in
  Alcotest.(check string) "1 vs 2 shards" d1 d2;
  Alcotest.(check string) "1 vs 4 shards" d1 d4;
  Alcotest.(check string) "sequential vs parallel" d4 d4p

let test_fanin_digest () =
  let run shards =
    let hub = Shard.create ~shards () in
    let topo =
      Pcc_experiments.Exp_manyflow.topology_sharded hub ~rng:(Rng.create 3)
        ~n:64 ~bandwidth:(Units.gbps 10.) ~rtt:0.01
    in
    Shard.run hub ~until:3.0;
    topo_digest hub topo
  in
  Alcotest.(check string) "fanin 1 vs 2 shards" (run 1) (run 2)

let run_scenario_sharded ~shards (s : Scenario.t) =
  let hub = Shard.create ~shards () in
  let b = Scenario.build_sharded hub s in
  Shard.run hub ~until:s.Scenario.duration;
  b.Scenario.stop ();
  topo_digest hub b.Scenario.topo

let test_scenario_differential () =
  (* Randomized differential over generated scenarios (dumbbells, chains,
     reverse paths; faults and cross traffic included): 1-shard and
     4-shard builds must agree bit for bit. *)
  let master = Rng.create 2024 in
  let checked = ref 0 in
  let attempts = ref 0 in
  while !checked < 6 && !attempts < 60 do
    incr attempts;
    let s = Scenario.generate ~rng:master () in
    if Scenario.shard_applicable s then begin
      let d1 = run_scenario_sharded ~shards:1 s in
      let d4 = run_scenario_sharded ~shards:4 s in
      Alcotest.(check string) (Scenario.describe s) d1 d4;
      incr checked
    end
  done;
  Alcotest.(check bool) "enough scenarios checked" true (!checked >= 6)

let test_scenario_with_faults_differential () =
  (* Force the fault path: keep generating until a scenario carries a
     non-empty schedule, then compare shard counts. *)
  let master = Rng.create 77 in
  let found = ref 0 in
  let attempts = ref 0 in
  while !found < 2 && !attempts < 80 do
    incr attempts;
    let s = Scenario.generate ~rng:master () in
    if Scenario.shard_applicable s && s.Scenario.faults <> [] then begin
      let d1 = run_scenario_sharded ~shards:1 s in
      let d3 = run_scenario_sharded ~shards:3 s in
      Alcotest.(check string)
        ("faulted " ^ Scenario.describe s)
        d1 d3;
      incr found
    end
  done;
  Alcotest.(check bool) "fault scenarios found" true (!found >= 2)

let test_dynamics_rejected () =
  let master = Rng.create 5 in
  let rec find n =
    if n = 0 then None
    else
      let s = Scenario.generate ~rng:master () in
      if s.Scenario.dynamics <> None then Some s else find (n - 1)
  in
  match find 200 with
  | None -> Alcotest.fail "no dynamics scenario generated"
  | Some s ->
    Alcotest.(check bool) "not shard_applicable" false
      (Scenario.shard_applicable s);
    let hub = Shard.create ~shards:2 () in
    Alcotest.(check bool) "build_sharded rejects" true
      (try
         ignore (Scenario.build_sharded hub s);
         false
       with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Counters and trace aggregation across shard domains. *)

let test_total_executed_aggregates () =
  let before = Engine.total_executed () in
  let hub, _topo = clustered ~shards:4 ~seed:9 ~n:16 in
  Shard.run ~mode:(Shard.Parallel 2) hub ~until:1.0;
  let delta = Engine.total_executed () - before in
  Alcotest.(check int) "process-wide counter covers all shards"
    (Shard.executed hub) delta;
  Alcotest.(check bool) "ran a real workload" true (Shard.executed hub > 1000)

let test_sharded_trace_identical () =
  let export shards =
    let c = Pcc_trace.Collector.create ~capacity:200_000 () in
    Pcc_trace.Collector.install c;
    Fun.protect ~finally:Pcc_trace.Collector.uninstall @@ fun () ->
    let hub, _topo = clustered ~shards ~seed:21 ~n:12 in
    Shard.run hub ~until:1.5;
    Alcotest.(check int) "ring did not wrap" 0
      (Pcc_trace.Collector.dropped c);
    Pcc_trace.Export.chrome_json ~canonical:true c
  in
  let j1 = export 1 in
  let j4 = export 4 in
  Alcotest.(check bool) "trace JSON non-trivial" true
    (String.length j1 > 1000);
  Alcotest.(check bool) "canonical trace byte-identical across shard counts"
    true (String.equal j1 j4)

let test_shardflow_row () =
  match
    Pcc_experiments.Exp_manyflow.run_sharded ~scale:0.04 ~seed:7 ()
  with
  | [ r ] ->
    Alcotest.(check bool) "digests identical" true
      r.Pcc_experiments.Exp_manyflow.s_identical;
    Alcotest.(check bool) "several shards populated" true
      (r.Pcc_experiments.Exp_manyflow.s_populated >= 2)
  | _ -> Alcotest.fail "expected one shardflow row"

(* ------------------------------------------------------------------ *)
(* Failure containment: chaos specs, clean abort, degradation ladder. *)

let chaos_crash_at s r = { Shard.crash = Some (s, r); wedge = None }
let chaos_wedge_at s r = { Shard.crash = None; wedge = Some (s, r) }

let expect_lane_failure ?shard ?round ?wedged f =
  match f () with
  | exception Shard.Lane_failure { shard = s; round = r; wedged = w; origin; _ }
    ->
    Option.iter (fun e -> Alcotest.(check int) "failed shard" e s) shard;
    Option.iter (fun e -> Alcotest.(check int) "failed round" e r) round;
    Option.iter (fun e -> Alcotest.(check bool) "wedged flag" e w) wedged;
    origin
  | _ -> Alcotest.fail "expected Shard.Lane_failure"

let test_chaos_spec_parse () =
  let pair = Alcotest.(option (pair int int)) in
  let c = Shard.chaos_of_string "crash=1:3" in
  Alcotest.check pair "crash parsed" (Some (1, 3)) c.Shard.crash;
  Alcotest.check pair "no wedge" None c.Shard.wedge;
  let c = Shard.chaos_of_string " crash=0:7 , wedge=2:5 " in
  Alcotest.check pair "crash of pair" (Some (0, 7)) c.Shard.crash;
  Alcotest.check pair "wedge of pair" (Some (2, 5)) c.Shard.wedge;
  let reject spec =
    Alcotest.(check bool)
      (Printf.sprintf "reject %S" spec)
      true
      (try
         ignore (Shard.chaos_of_string spec);
         false
       with Invalid_argument _ -> true)
  in
  reject "crash=1";
  reject "crash=1:0";
  reject "crash=-1:2";
  reject "boom=1:2";
  reject "crash=a:b";
  reject "crash"

let test_chaos_env () =
  let pair = Alcotest.(option (pair int int)) in
  Unix.putenv "PCC_TEST_SHARD_CRASH" "2:9";
  Unix.putenv "PCC_TEST_SHARD_WEDGE" "";
  Fun.protect ~finally:(fun () -> Unix.putenv "PCC_TEST_SHARD_CRASH" "")
  @@ fun () ->
  let c = Shard.chaos_of_env () in
  Alcotest.check pair "crash from env" (Some (2, 9)) c.Shard.crash;
  Alcotest.check pair "empty wedge ignored" None c.Shard.wedge;
  (* An explicit CLI override beats the environment... *)
  Shard.set_default_chaos (chaos_crash_at 1 1);
  Alcotest.check pair "override wins" (Some (1, 1))
    (Shard.default_chaos ()).Shard.crash;
  (* ...and stays authoritative once set (tests leave it neutral). *)
  Shard.set_default_chaos Shard.no_chaos;
  Alcotest.check pair "neutral override" None
    (Shard.default_chaos ()).Shard.crash

let test_crash_contained_sequential () =
  let hub, _topo = clustered ~shards:4 ~seed:11 ~n:48 in
  Shard.configure ~chaos:(chaos_crash_at 1 3) hub;
  let origin =
    expect_lane_failure ~shard:1 ~round:3 ~wedged:false (fun () ->
        Shard.run hub ~until:3.0)
  in
  (match origin with
  | Shard.Chaos_crash { shard = 1; round = 3 } -> ()
  | e -> Alcotest.fail ("unexpected origin: " ^ Printexc.to_string e));
  Alcotest.(check bool) "hub poisoned" true (Shard.poisoned hub);
  Alcotest.(check bool) "poisoned re-run rejected" true
    (try
       Shard.run hub ~until:3.0;
       false
     with Shard.Shard_error _ -> true)

let test_crash_contained_parallel () =
  let hub, _topo = clustered ~shards:4 ~seed:11 ~n:48 in
  Shard.configure ~chaos:(chaos_crash_at 1 3) hub;
  let origin =
    expect_lane_failure ~shard:1 ~round:3 ~wedged:false (fun () ->
        Shard.run ~mode:(Shard.Parallel 2) hub ~until:3.0)
  in
  (match origin with
  | Shard.Chaos_crash { shard = 1; round = 3 } -> ()
  | e -> Alcotest.fail ("unexpected origin: " ^ Printexc.to_string e));
  Alcotest.(check bool) "hub poisoned" true (Shard.poisoned hub)

let test_wedge_synchronous () =
  (* No watchdog armed: a wedge spec degenerates to a synchronous
     failure, which still exercises the abort and ladder paths. *)
  let hub, _topo = clustered ~shards:4 ~seed:11 ~n:48 in
  Shard.configure ~chaos:(chaos_wedge_at 2 2) hub;
  let origin =
    expect_lane_failure ~shard:2 ~round:2 ~wedged:true (fun () ->
        Shard.run hub ~until:3.0)
  in
  match origin with
  | Shard.Lane_wedged { shard = 2; round = 2; stale } ->
    Alcotest.(check (float 0.)) "synchronous wedge has no staleness" 0. stale
  | e -> Alcotest.fail ("unexpected origin: " ^ Printexc.to_string e)

let test_wedge_watchdog () =
  (* A parallel run with the watchdog armed: the wedged lane stops
     heartbeating, the watchdog abandons it after the grace and the run
     aborts with a wedged Lane_failure naming the chaos target. *)
  let hub, _topo = clustered ~shards:4 ~seed:11 ~n:48 in
  Shard.configure ~chaos:(chaos_wedge_at 3 4) ~wedge_grace:0.2
    ~sleep:Unix.sleepf hub;
  let origin =
    expect_lane_failure ~shard:3 ~round:4 ~wedged:true (fun () ->
        Shard.run ~mode:(Shard.Parallel 4) ~clock:Unix.gettimeofday hub
          ~until:3.0)
  in
  (match origin with
  | Shard.Lane_wedged { shard = 3; round = 4; stale } ->
    Alcotest.(check bool) "staleness exceeds the grace" true (stale >= 0.2)
  | e -> Alcotest.fail ("unexpected origin: " ^ Printexc.to_string e));
  Alcotest.(check bool) "hub poisoned" true (Shard.poisoned hub)

let test_lane_event_ceiling () =
  let hub, _topo = clustered ~shards:4 ~seed:11 ~n:48 in
  Shard.configure ~lane_max_events:1000 hub;
  let origin =
    expect_lane_failure ~wedged:false (fun () -> Shard.run hub ~until:3.0)
  in
  (match origin with
  | Task_guard.Event_budget_exceeded { limit = 1000; _ } -> ()
  | e -> Alcotest.fail ("unexpected origin: " ^ Printexc.to_string e));
  Alcotest.(check bool) "hub poisoned" true (Shard.poisoned hub)

let test_pool_reclaimed_on_abort () =
  (* The Topology wiring pattern under a mid-run crash: boundary
     messages checked out of the pool at injection would leak when the
     window that releases them never runs; the abort path's reclaim
     registry must hand every slot back. *)
  let hub = Shard.create ~shards:2 () in
  Shard.configure ~chaos:(chaos_crash_at 0 2) hub;
  let dst = Shard.engine hub 1 in
  let pool = Pool.create ~dummy:(-1) () in
  let seen = ref 0 in
  Pool.set_fire pool (fun _ -> incr seen);
  Engine.add_owned dst (fun () -> Pool.adopt pool);
  Engine.add_reclaim dst (fun () -> Pool.clear pool);
  let ch =
    Shard.channel hub ~src:0 ~dst:1 ~floor:0.001
      ~inject:(fun ~arrival ~sent v ->
        Engine.post_from dst ~sent ~at:arrival (Pool.event pool v))
  in
  let src = Shard.engine hub 0 in
  let n = 500 in
  for i = 0 to n - 1 do
    let at = 0.0005 *. float_of_int i in
    Engine.post src ~at (fun () ->
        Shard.send ch ~now:(Engine.now src) ~arrival:(Engine.now src +. 0.002) i)
  done;
  let raised =
    try
      Shard.run hub ~until:2.0;
      false
    with Shard.Lane_failure { shard = 0; wedged = false; _ } -> true
  in
  Alcotest.(check bool) "lane failure raised" true raised;
  Alcotest.(check bool) "abort interrupted delivery" true (!seen < n);
  Alcotest.(check int) "no pooled record leaked" 0 (Pool.in_use pool);
  (* The coordinator owns the pool again after the abort. *)
  let before = !seen in
  let ev = Pool.event pool 1 in
  ev ();
  Alcotest.(check int) "pool usable after abort" (before + 1) !seen

let test_ladder_digest_identity () =
  (* The tentpole guarantee: a run that crashes mid-ladder and settles
     on a narrower rung produces byte-identical output to a clean run —
     and the supervisor's degraded accounting sees each step. *)
  ignore (Degrade.take_tally ());
  let clean =
    let hub, topo = clustered ~shards:1 ~seed:11 ~n:48 in
    Shard.run hub ~until:3.0;
    topo_digest hub topo
  in
  let reported = ref [] in
  let outcome =
    Degrade.run
      ~report:(fun s -> reported := s :: !reported)
      ~plan:(Degrade.plan ~shards:4 ())
      (fun (a : Degrade.attempt) ->
        let hub, topo = clustered ~shards:a.Degrade.shards ~seed:11 ~n:48 in
        Shard.configure ~chaos:(chaos_crash_at 1 3) hub;
        Shard.run hub ~until:3.0;
        topo_digest hub topo)
  in
  Alcotest.(check string) "degraded output byte-identical" clean
    outcome.Degrade.value;
  Alcotest.(check int) "two rungs failed" 2 (List.length outcome.Degrade.steps);
  Alcotest.(check int) "settled sequential" 1
    outcome.Degrade.attempt.Degrade.shards;
  Alcotest.(check int) "report saw every step" 2 (List.length !reported);
  Alcotest.(check int) "degradation tally" 2 (Degrade.take_tally ());
  List.iter
    (fun (s : Degrade.step) ->
      Alcotest.(check int) "step blames the chaos shard" 1 s.Degrade.shard;
      Alcotest.(check int) "step names the chaos round" 3 s.Degrade.round;
      Alcotest.(check bool) "crash, not wedge" false s.Degrade.wedged)
    outcome.Degrade.steps

let test_ladder_disabled () =
  (* --no-fallback semantics: the first failure propagates untouched. *)
  let raised =
    try
      ignore
        (Degrade.run ~enabled:false
           ~plan:(Degrade.plan ~shards:4 ())
           (fun (a : Degrade.attempt) ->
             let hub, topo =
               clustered ~shards:a.Degrade.shards ~seed:11 ~n:48
             in
             Shard.configure ~chaos:(chaos_crash_at 1 3) hub;
             Shard.run hub ~until:3.0;
             topo_digest hub topo));
      false
    with Shard.Lane_failure { shard = 1; round = 3; wedged = false; _ } -> true
  in
  Alcotest.(check bool) "first failure propagates" true raised;
  Alcotest.(check int) "no degradation tallied" 0 (Degrade.take_tally ())

let test_ladder_plan () =
  let attempts = Degrade.plan ~domains:4 ~shards:4 () in
  Alcotest.(check (list (pair int int)))
    "halving rungs"
    [ (4, 4); (2, 2); (1, 1) ]
    (List.map (fun a -> (a.Degrade.shards, a.Degrade.domains)) attempts);
  Alcotest.(check (list (pair int int)))
    "sequential plan" [ (1, 1) ]
    (List.map
       (fun a -> (a.Degrade.shards, a.Degrade.domains))
       (Degrade.plan ~shards:1 ()))

let suites =
  [
    ( "shard.partition",
      [
        Alcotest.test_case "fuses fast edges" `Quick test_partition_fuse;
        Alcotest.test_case "deterministic" `Quick test_partition_deterministic;
        Alcotest.test_case "validation" `Quick test_partition_validation;
        Alcotest.test_case "clusters spread" `Quick test_partition_clusters;
      ] );
    ( "shard.hub",
      [
        Alcotest.test_case "channel validation" `Quick test_channel_validation;
        Alcotest.test_case "send floor" `Quick test_send_floor;
        Alcotest.test_case "control ordering" `Quick test_control_ordering;
        Alcotest.test_case "clocks parked" `Quick test_clocks_parked;
        Alcotest.test_case "delivery order" `Quick test_channel_delivery_order;
      ] );
    ( "shard.pool",
      [
        Alcotest.test_case "double release" `Quick test_pool_double_release;
        Alcotest.test_case "cross-domain release" `Quick test_pool_cross_domain;
        Alcotest.test_case "adopt hand-off" `Quick test_pool_adopt_handoff;
        Alcotest.test_case "no leak across sharded run" `Quick
          test_pool_no_leak_sharded;
      ] );
    ( "shard.determinism",
      [
        Alcotest.test_case "clustered digests" `Quick test_clustered_digest;
        Alcotest.test_case "fanin digests" `Quick test_fanin_digest;
        Alcotest.test_case "scenario differential" `Slow
          test_scenario_differential;
        Alcotest.test_case "faulted differential" `Slow
          test_scenario_with_faults_differential;
        Alcotest.test_case "dynamics rejected" `Quick test_dynamics_rejected;
        Alcotest.test_case "shardflow row" `Slow test_shardflow_row;
      ] );
    ( "shard.aggregation",
      [
        Alcotest.test_case "total_executed" `Quick
          test_total_executed_aggregates;
        Alcotest.test_case "canonical trace export" `Slow
          test_sharded_trace_identical;
      ] );
    ( "shard.resilience",
      [
        Alcotest.test_case "chaos spec parsing" `Quick test_chaos_spec_parse;
        Alcotest.test_case "chaos from environment" `Quick test_chaos_env;
        Alcotest.test_case "crash contained (sequential)" `Quick
          test_crash_contained_sequential;
        Alcotest.test_case "crash contained (parallel)" `Quick
          test_crash_contained_parallel;
        Alcotest.test_case "synchronous wedge" `Quick test_wedge_synchronous;
        Alcotest.test_case "watchdog abandons wedged lane" `Slow
          test_wedge_watchdog;
        Alcotest.test_case "lane event ceiling" `Quick test_lane_event_ceiling;
        Alcotest.test_case "pool reclaimed on abort" `Quick
          test_pool_reclaimed_on_abort;
        Alcotest.test_case "ladder digest identity" `Slow
          test_ladder_digest_identity;
        Alcotest.test_case "ladder disabled" `Quick test_ladder_disabled;
        Alcotest.test_case "ladder plan" `Quick test_ladder_plan;
      ] );
  ]
