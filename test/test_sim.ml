open Pcc_sim

let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Units *)

let test_conversions () =
  check_float "mbps" 1e6 (Units.mbps 1.);
  check_float "kbps" 1e3 (Units.kbps 1.);
  check_float "gbps" 1e9 (Units.gbps 1.);
  check_float "to_mbps roundtrip" 42. (Units.to_mbps (Units.mbps 42.));
  Alcotest.(check int) "kib" 2048 (Units.kib 2);
  Alcotest.(check int) "mib" (1024 * 1024) (Units.mib 1);
  check_float "ms" 0.005 (Units.ms 5.);
  check_float "us" 5e-6 (Units.us 5.)

let test_transmission_time () =
  (* 1500 bytes at 12 kbps = 1 second. *)
  check_float "tx time" 1. (Units.transmission_time ~size:1500 ~rate:12000.);
  Alcotest.check_raises "zero rate rejected"
    (Invalid_argument "Units.transmission_time: rate <= 0") (fun () ->
      ignore (Units.transmission_time ~size:1500 ~rate:0.))

let test_packets_of_bytes () =
  Alcotest.(check int) "exact" 2 (Units.packets_of_bytes (2 * Units.mss));
  Alcotest.(check int) "round up" 3 (Units.packets_of_bytes ((2 * Units.mss) + 1));
  Alcotest.(check int) "one byte" 1 (Units.packets_of_bytes 1)

let test_bdp () =
  (* 100 Mbps * 30 ms = 375000 bytes. *)
  Alcotest.(check int) "bdp" 375000
    (Units.bdp_bytes ~rate:(Units.mbps 100.) ~rtt:0.03)

(* ------------------------------------------------------------------ *)
(* Event heap *)

let test_heap_order () =
  let h = Event_heap.create () in
  ignore (Event_heap.push h ~time:3. "c");
  ignore (Event_heap.push h ~time:1. "a");
  ignore (Event_heap.push h ~time:2. "b");
  let pop () = match Event_heap.pop h with Some (_, v) -> v | None -> "?" in
  let first = pop () in
  let second = pop () in
  let third = pop () in
  Alcotest.(check (list string)) "sorted" [ "a"; "b"; "c" ]
    [ first; second; third ];
  Alcotest.(check bool) "empty" true (Event_heap.is_empty h)

let test_heap_fifo_ties () =
  let h = Event_heap.create () in
  ignore (Event_heap.push h ~time:1. "first");
  ignore (Event_heap.push h ~time:1. "second");
  ignore (Event_heap.push h ~time:1. "third");
  let pop () = match Event_heap.pop h with Some (_, v) -> v | None -> "?" in
  let a = pop () in
  let b = pop () in
  let c = pop () in
  Alcotest.(check (list string)) "insertion order on ties"
    [ "first"; "second"; "third" ]
    [ a; b; c ]

let test_heap_cancel () =
  let h = Event_heap.create () in
  let _a = Event_heap.push h ~time:1. "a" in
  let b = Event_heap.push h ~time:2. "b" in
  ignore (Event_heap.push h ~time:3. "c");
  Event_heap.cancel b;
  Alcotest.(check bool) "cancelled" true (Event_heap.cancelled b);
  let pop () = match Event_heap.pop h with Some (_, v) -> v | None -> "?" in
  let first = pop () in
  let second = pop () in
  Alcotest.(check (list string)) "skips cancelled" [ "a"; "c" ]
    [ first; second ];
  (* Cancelling twice is harmless. *)
  Event_heap.cancel b

let test_heap_cancel_root () =
  let h = Event_heap.create () in
  let a = Event_heap.push h ~time:1. "a" in
  ignore (Event_heap.push h ~time:2. "b");
  Event_heap.cancel a;
  Alcotest.(check (option (float 0.))) "peek skips dead root" (Some 2.)
    (Event_heap.peek_time h);
  Alcotest.(check int) "size purges root" 1 (Event_heap.size h)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap pops in nondecreasing time order" ~count:200
    QCheck.(list (float_bound_inclusive 1000.))
    (fun times ->
      let h = Event_heap.create () in
      List.iter (fun t -> ignore (Event_heap.push h ~time:t ())) times;
      let rec drain acc =
        match Event_heap.pop h with
        | Some (t, ()) -> drain (t :: acc)
        | None -> List.rev acc
      in
      let popped = drain [] in
      List.length popped = List.length times
      && popped = List.sort compare times)

(* ------------------------------------------------------------------ *)
(* Engine *)

let test_engine_order () =
  let engine = Engine.create () in
  let log = ref [] in
  ignore (Engine.schedule engine ~at:2. (fun () -> log := 2 :: !log));
  ignore (Engine.schedule engine ~at:1. (fun () -> log := 1 :: !log));
  ignore (Engine.schedule engine ~at:3. (fun () -> log := 3 :: !log));
  Engine.run engine;
  Alcotest.(check (list int)) "order" [ 1; 2; 3 ] (List.rev !log);
  check_float "clock at last event" 3. (Engine.now engine)

let test_engine_until () =
  let engine = Engine.create () in
  let fired = ref 0 in
  ignore (Engine.schedule engine ~at:1. (fun () -> incr fired));
  ignore (Engine.schedule engine ~at:5. (fun () -> incr fired));
  Engine.run ~until:2. engine;
  Alcotest.(check int) "only first fired" 1 !fired;
  check_float "clock left at limit" 2. (Engine.now engine);
  Engine.run engine;
  Alcotest.(check int) "second fires later" 2 !fired

let test_engine_cancel () =
  let engine = Engine.create () in
  let fired = ref false in
  let timer = Engine.schedule engine ~at:1. (fun () -> fired := true) in
  Engine.cancel timer;
  Engine.run engine;
  Alcotest.(check bool) "cancelled timer silent" false !fired

let test_engine_past_raises () =
  let engine = Engine.create () in
  ignore (Engine.schedule engine ~at:5. (fun () -> ()));
  Engine.run engine;
  Alcotest.(check bool) "raises on past schedule" true
    (try
       ignore (Engine.schedule engine ~at:1. (fun () -> ()));
       false
     with Invalid_argument _ -> true)

let test_engine_nested_scheduling () =
  let engine = Engine.create () in
  let log = ref [] in
  ignore
    (Engine.schedule engine ~at:1. (fun () ->
         log := "outer" :: !log;
         ignore
           (Engine.schedule_in engine ~after:1. (fun () ->
                log := "inner" :: !log))));
  Engine.run engine;
  Alcotest.(check (list string)) "nested" [ "outer"; "inner" ] (List.rev !log);
  check_float "clock" 2. (Engine.now engine)

let test_engine_same_time_fifo () =
  let engine = Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    ignore (Engine.schedule engine ~at:1. (fun () -> log := i :: !log))
  done;
  Engine.run engine;
  Alcotest.(check (list int)) "same-instant FIFO" [ 1; 2; 3; 4; 5 ]
    (List.rev !log)

let test_engine_negative_delay_clamped () =
  let engine = Engine.create () in
  let fired = ref false in
  ignore (Engine.schedule_in engine ~after:(-5.) (fun () -> fired := true));
  Engine.run engine;
  Alcotest.(check bool) "clamped to now" true !fired;
  check_float "clock unchanged" 0. (Engine.now engine)

(* ------------------------------------------------------------------ *)
(* Engine hardening: exception-safe dispatch and the livelock watchdog *)

let test_engine_event_error_context () =
  let engine = Engine.create () in
  ignore (Engine.schedule engine ~at:1.5 (fun () -> failwith "boom"));
  ignore (Engine.schedule engine ~at:2. (fun () -> ()));
  (match Engine.run engine with
  | () -> Alcotest.fail "raising callback must surface"
  | exception Engine.Event_error { time; exn } ->
    check_float "scheduled time attached" 1.5 time;
    Alcotest.(check bool) "original exn preserved" true
      (match exn with Failure m -> m = "boom" | _ -> false));
  (* The failing event was consumed and the engine is still steppable. *)
  check_float "clock advanced to the failed event" 1.5 (Engine.now engine);
  Alcotest.(check bool) "next event still runs" true (Engine.step engine);
  check_float "clock reaches the survivor" 2. (Engine.now engine)

let test_engine_collect_policy () =
  let engine = Engine.create ~on_error:Collect () in
  let survived = ref false in
  ignore (Engine.schedule engine ~at:1. (fun () -> failwith "first"));
  ignore (Engine.schedule engine ~at:2. (fun () -> failwith "second"));
  ignore (Engine.schedule engine ~at:3. (fun () -> survived := true));
  Engine.run engine;
  Alcotest.(check bool) "later events still ran" true !survived;
  let errs = Engine.errors engine in
  Alcotest.(check int) "both errors collected" 2 (List.length errs);
  check_float "oldest first" 1. (fst (List.hd errs));
  Engine.clear_errors engine;
  Alcotest.(check int) "cleared" 0 (List.length (Engine.errors engine))

let test_engine_livelock_watchdog () =
  (* A zero-delay self-rescheduling event must trip the watchdog instead
     of hanging the run forever. *)
  let engine = Engine.create ~stall_budget:500 () in
  ignore
    (Engine.schedule engine ~at:1. (fun () ->
         let rec respawn () =
           ignore (Engine.schedule_in engine ~after:0. respawn)
         in
         respawn ()));
  (match Engine.run engine with
  | () -> Alcotest.fail "expected a livelock"
  | exception Engine.Livelock { time; events; kind = Engine.Stall } ->
    check_float "offending instant reported" 1. time;
    Alcotest.(check bool) "budget was spent" true (events > 500);
    let contains hay needle =
      let nh = String.length hay and nn = String.length needle in
      let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
      go 0
    in
    let msg =
      Printexc.to_string (Engine.Livelock { time; events; kind = Engine.Stall })
    in
    Alcotest.(check bool) "time is in the message" true (contains msg "t=1.0")
  | exception Engine.Livelock _ -> Alcotest.fail "wrong livelock kind");
  (* The watchdog fires mid-run but the engine survives: advancing the
     clock resets the stall counter. *)
  ignore (Engine.schedule_in engine ~after:1. (fun () -> ()));
  Alcotest.(check bool) "still steppable" true (Engine.step engine)

let test_engine_event_budget () =
  let engine = Engine.create () in
  let rec chain n =
    ignore
      (Engine.schedule_in engine ~after:0.001 (fun () -> chain (n + 1)))
  in
  chain 0;
  match Engine.run ~max_events:100 engine with
  | () -> Alcotest.fail "expected budget exhaustion"
  | exception Engine.Livelock { events; kind = Engine.Budget; _ } ->
    Alcotest.(check int) "stopped at the budget" 100 events
  | exception Engine.Livelock _ -> Alcotest.fail "wrong livelock kind"

let test_engine_watchdog_spares_bursts () =
  (* Many simultaneous events are normal (incast); only unbounded
     same-instant loops should trip. *)
  let engine = Engine.create ~stall_budget:1000 () in
  let fired = ref 0 in
  for _ = 1 to 900 do
    ignore (Engine.schedule engine ~at:1. (fun () -> incr fired))
  done;
  Engine.run engine;
  Alcotest.(check int) "all burst events ran" 900 !fired

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_deterministic () =
  let a = Rng.create 1 and b = Rng.create 1 in
  for _ = 1 to 100 do
    Alcotest.(check (float 0.)) "same stream" (Rng.float a) (Rng.float b)
  done

let test_rng_seeds_differ () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr same
  done;
  Alcotest.(check int) "different seeds diverge" 0 !same

let test_rng_split_independent () =
  let parent = Rng.create 7 in
  let child = Rng.split parent in
  let xs = List.init 32 (fun _ -> Rng.bits64 parent) in
  let ys = List.init 32 (fun _ -> Rng.bits64 child) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let test_rng_copy_replays () =
  let a = Rng.create 3 in
  ignore (Rng.float a);
  let b = Rng.copy a in
  Alcotest.(check (float 0.)) "copy replays" (Rng.float a) (Rng.float b)

let test_rng_bernoulli_extremes () =
  let rng = Rng.create 5 in
  for _ = 1 to 50 do
    Alcotest.(check bool) "p=0" false (Rng.bernoulli rng 0.);
    Alcotest.(check bool) "p=1" true (Rng.bernoulli rng 1.)
  done

let test_rng_bernoulli_rate () =
  let rng = Rng.create 11 in
  let n = 20000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Rng.bernoulli rng 0.3 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "close to 0.3" true (Float.abs (rate -. 0.3) < 0.02)

let test_rng_exponential_mean () =
  let rng = Rng.create 13 in
  let n = 20000 in
  let total = ref 0. in
  for _ = 1 to n do
    total := !total +. Rng.exponential rng 2.
  done;
  let mean = !total /. float_of_int n in
  Alcotest.(check bool) "mean ~2" true (Float.abs (mean -. 2.) < 0.1)

let prop_rng_float_unit =
  QCheck.Test.make ~name:"Rng.float in [0,1)" ~count:500 QCheck.small_int
    (fun seed ->
      let rng = Rng.create seed in
      let v = Rng.float rng in
      v >= 0. && v < 1.)

let prop_rng_int_bound =
  QCheck.Test.make ~name:"Rng.int in [0,n)" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let v = Rng.int rng n in
      v >= 0 && v < n)

let prop_rng_log_uniform =
  QCheck.Test.make ~name:"log_uniform within bounds" ~count:300
    QCheck.(pair small_int (pair (float_range 0.001 10.) (float_range 0.1 100.)))
    (fun (seed, (lo, extra)) ->
      let hi = lo +. extra in
      let rng = Rng.create seed in
      let v = Rng.log_uniform rng lo hi in
      v >= lo && v <= hi *. (1. +. 1e-9))

let prop_rng_shuffle_multiset =
  QCheck.Test.make ~name:"shuffle preserves elements" ~count:200
    QCheck.(pair small_int (list small_int))
    (fun (seed, l) ->
      let rng = Rng.create seed in
      let a = Array.of_list l in
      Rng.shuffle rng a;
      List.sort compare (Array.to_list a) = List.sort compare l)

let q = QCheck_alcotest.to_alcotest

let suites =
  [
    ( "sim.units",
      [
        Alcotest.test_case "conversions" `Quick test_conversions;
        Alcotest.test_case "transmission time" `Quick test_transmission_time;
        Alcotest.test_case "packets of bytes" `Quick test_packets_of_bytes;
        Alcotest.test_case "bdp" `Quick test_bdp;
      ] );
    ( "sim.event_heap",
      [
        Alcotest.test_case "pop order" `Quick test_heap_order;
        Alcotest.test_case "fifo ties" `Quick test_heap_fifo_ties;
        Alcotest.test_case "cancellation" `Quick test_heap_cancel;
        Alcotest.test_case "cancel root" `Quick test_heap_cancel_root;
        q prop_heap_sorts;
      ] );
    ( "sim.engine",
      [
        Alcotest.test_case "event order" `Quick test_engine_order;
        Alcotest.test_case "run until" `Quick test_engine_until;
        Alcotest.test_case "cancel" `Quick test_engine_cancel;
        Alcotest.test_case "past schedule raises" `Quick test_engine_past_raises;
        Alcotest.test_case "nested scheduling" `Quick test_engine_nested_scheduling;
        Alcotest.test_case "same-time fifo" `Quick test_engine_same_time_fifo;
        Alcotest.test_case "negative delay clamped" `Quick
          test_engine_negative_delay_clamped;
        Alcotest.test_case "event error carries its time" `Quick
          test_engine_event_error_context;
        Alcotest.test_case "collect policy" `Quick test_engine_collect_policy;
        Alcotest.test_case "livelock watchdog" `Quick
          test_engine_livelock_watchdog;
        Alcotest.test_case "event budget" `Quick test_engine_event_budget;
        Alcotest.test_case "watchdog spares bursts" `Quick
          test_engine_watchdog_spares_bursts;
      ] );
    ( "sim.rng",
      [
        Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
        Alcotest.test_case "seeds differ" `Quick test_rng_seeds_differ;
        Alcotest.test_case "split independent" `Quick test_rng_split_independent;
        Alcotest.test_case "copy replays" `Quick test_rng_copy_replays;
        Alcotest.test_case "bernoulli extremes" `Quick test_rng_bernoulli_extremes;
        Alcotest.test_case "bernoulli rate" `Quick test_rng_bernoulli_rate;
        Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
        q prop_rng_float_unit;
        q prop_rng_int_bound;
        q prop_rng_log_uniform;
        q prop_rng_shuffle_multiset;
      ] );
  ]
