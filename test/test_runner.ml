(* The domain pool (Pcc_experiments.Runner), the event heap's exact live
   count, and the determinism contract: identical output for any --jobs. *)

open Pcc_experiments
module Heap = Pcc_sim.Event_heap

(* ------------------------------------------------------------------ *)
(* Event heap: exact size under cancellation. *)

let test_heap_size_buried_cancel () =
  let h = Heap.create () in
  let handles =
    List.map (fun t -> (t, Heap.push h ~time:t t)) [ 5.; 1.; 4.; 2.; 3. ]
  in
  Alcotest.(check int) "five live" 5 (Heap.size h);
  (* Cancel entries that are NOT at the root (times 4 and 5): they stay
     buried in the arrays but must stop counting immediately. *)
  List.iter (fun (t, han) -> if t >= 4. then Heap.cancel han) handles;
  Alcotest.(check int) "three live after burying two" 3 (Heap.size h);
  Alcotest.(check bool) "not empty" false (Heap.is_empty h);
  (* Pops only surface the live ones, in order. *)
  let order = List.filter_map (fun _ -> Heap.pop h) [ (); (); (); () ] in
  Alcotest.(check (list (pair (float 0.) (float 0.))))
    "live events in time order"
    [ (1., 1.); (2., 2.); (3., 3.) ]
    order;
  Alcotest.(check int) "drained" 0 (Heap.size h);
  Alcotest.(check bool) "empty" true (Heap.is_empty h)

let test_heap_cancel_all_is_empty () =
  let h = Heap.create () in
  let handles = List.init 8 (fun i -> Heap.push h ~time:(float_of_int i) i) in
  List.iter Heap.cancel handles;
  Alcotest.(check int) "size 0 with 8 dead entries stored" 0 (Heap.size h);
  Alcotest.(check bool) "is_empty despite stored entries" true (Heap.is_empty h);
  Alcotest.(check bool) "pop finds nothing" true (Heap.pop h = None)

let test_heap_cancel_after_pop () =
  let h = Heap.create () in
  let a = Heap.push h ~time:1. "a" in
  let _b = Heap.push h ~time:2. "b" in
  Alcotest.(check bool) "popped a" true (Heap.pop h = Some (1., "a"));
  (* Cancelling a's handle after it was popped must not corrupt the
     count of the remaining live entry. *)
  Heap.cancel a;
  Heap.cancel a;
  Alcotest.(check int) "b still counted" 1 (Heap.size h);
  Alcotest.(check bool) "cancelled is false for popped" false (Heap.cancelled a);
  Alcotest.(check bool) "popped b" true (Heap.pop h = Some (2., "b"))

let test_heap_double_cancel () =
  let h = Heap.create () in
  let a = Heap.push h ~time:1. 1 in
  let _b = Heap.push h ~time:2. 2 in
  Heap.cancel a;
  Heap.cancel a;
  Alcotest.(check int) "double cancel decrements once" 1 (Heap.size h)

let test_heap_pop_le () =
  let h = Heap.create () in
  let _ = Heap.push h ~time:1. 1 in
  let h2 = Heap.push h ~time:2. 2 in
  let _ = Heap.push h ~time:3. 3 in
  Alcotest.(check bool) "pop_le below earliest" true
    (Heap.pop_le h ~max_time:0.5 = None);
  Alcotest.(check bool) "pop_le at 2.5 gives 1" true
    (Heap.pop_le h ~max_time:2.5 = Some (1., 1));
  Heap.cancel h2;
  (* The cancelled 2 must be skipped without being returned. *)
  Alcotest.(check bool) "pop_le skips cancelled" true
    (Heap.pop_le h ~max_time:2.5 = None);
  Alcotest.(check int) "only 3 remains" 1 (Heap.size h);
  Alcotest.(check bool) "3 still there" true
    (Heap.pop_le h ~max_time:10. = Some (3., 3))

let test_heap_tie_break_fifo () =
  let h = Heap.create () in
  List.iter (fun v -> ignore (Heap.push h ~time:1. v)) [ "a"; "b"; "c" ];
  let order = List.filter_map (fun _ -> Heap.pop h) [ (); (); () ] in
  Alcotest.(check (list (pair (float 0.) string)))
    "simultaneous events pop in insertion order"
    [ (1., "a"); (1., "b"); (1., "c") ]
    order

(* ------------------------------------------------------------------ *)
(* Runner: order preservation, seeds, errors. *)

(* Burn CPU proportionally to [n] so tasks finish out of submission
   order under real parallelism (and under any scheduling). *)
let busy n =
  let acc = ref 0 in
  for i = 1 to n * 20_000 do
    acc := !acc + (i land 7)
  done;
  Sys.opaque_identity !acc

let test_map_preserves_order () =
  Runner.with_pool ~jobs:4 (fun pool ->
      let n = 32 in
      (* Task i works longest when i is smallest: completion order is
         roughly the reverse of submission order. *)
      let inputs = Array.init n (fun i -> i) in
      let results =
        Runner.map pool
          (fun i ->
            ignore (busy (n - i));
            i * i)
          inputs
      in
      Alcotest.(check (array int))
        "slots in task order regardless of completion order"
        (Array.init n (fun i -> i * i))
        results)

let test_map_list_matches_sequential () =
  let inputs = List.init 50 (fun i -> i) in
  let f i = (i * 7919) mod 1001 in
  let seq = List.map f inputs in
  Runner.with_pool ~jobs:8 (fun pool ->
      Alcotest.(check (list int))
        "map_list = List.map" seq
        (Runner.map_list pool f inputs))

let test_derive_seed_pure_and_distinct () =
  let s = Runner.derive_seed ~master:42 ~index:7 in
  Alcotest.(check int) "deterministic" s
    (Runner.derive_seed ~master:42 ~index:7);
  Alcotest.(check bool) "non-negative" true (s >= 0);
  let seeds =
    List.init 1000 (fun i -> Runner.derive_seed ~master:42 ~index:i)
  in
  let distinct = List.sort_uniq compare seeds in
  Alcotest.(check int) "1000 indices, 1000 distinct seeds" 1000
    (List.length distinct);
  Alcotest.(check bool) "different master, different stream" true
    (Runner.derive_seed ~master:1 ~index:0
    <> Runner.derive_seed ~master:2 ~index:0)

let test_derive_seed_independent_of_completion_order () =
  (* Each task derives its seed inside the task body; delays reverse the
     completion order. The derived seeds must still be exactly the
     sequential ones, slot by slot. *)
  let n = 16 in
  let expected = Array.init n (fun i -> Runner.derive_seed ~master:7 ~index:i) in
  Runner.with_pool ~jobs:4 (fun pool ->
      let got =
        Runner.map pool
          (fun i ->
            ignore (busy (n - i));
            Runner.derive_seed ~master:7 ~index:i)
          (Array.init n (fun i -> i))
      in
      Alcotest.(check (array int))
        "per-task seeds independent of scheduling" expected got)

exception Task_failed of int

let test_lowest_index_error_wins () =
  Runner.with_pool ~jobs:4 (fun pool ->
      let raised =
        try
          ignore
            (Runner.map pool
               (fun i ->
                 ignore (busy (24 - i));
                 (* Index 20 fails fast, index 3 fails slow: the slow,
                    lower-indexed failure must be the one reported. *)
                 if i = 3 || i = 20 then raise (Task_failed i);
                 i)
               (Array.init 24 (fun i -> i)));
          None
        with Task_failed i -> Some i
      in
      Alcotest.(check (option int)) "lowest-indexed exception" (Some 3) raised)

let test_jobs_one_inline () =
  Runner.with_pool ~jobs:1 (fun pool ->
      Alcotest.(check int) "jobs" 1 (Runner.jobs pool);
      Alcotest.(check (list int))
        "inline map works" [ 2; 4; 6 ]
        (Runner.map_list pool (fun x -> 2 * x) [ 1; 2; 3 ]))

(* ------------------------------------------------------------------ *)
(* The determinism contract, end to end: rendered experiment tables are
   byte-identical for --jobs 1/2/8. *)

let rendered_loss ?pool () =
  Exp_common.render_table
    (Exp_loss.table
       (Exp_loss.run ?pool ~scale:0.02 ~seed:11 ~losses:[ 0.0; 0.02 ] ()))

let rendered_game ?pool () =
  Exp_common.render_table
    (Exp_game.table (Exp_game.run ?pool ~seed:11 ~ns:[ 2; 5 ] ()))

let test_tables_byte_identical_across_jobs () =
  let seq_loss = rendered_loss () in
  let seq_game = rendered_game () in
  List.iter
    (fun jobs ->
      Runner.with_pool ~jobs (fun pool ->
          Alcotest.(check string)
            (Printf.sprintf "fig7 subset identical at jobs=%d" jobs)
            seq_loss
            (rendered_loss ~pool ());
          Alcotest.(check string)
            (Printf.sprintf "game identical at jobs=%d" jobs)
            seq_game
            (rendered_game ~pool ())))
    [ 1; 2; 8 ]

let suites =
  [
    ( "event_heap.live_count",
      [
        Alcotest.test_case "buried cancellations" `Quick
          test_heap_size_buried_cancel;
        Alcotest.test_case "cancel all -> empty" `Quick
          test_heap_cancel_all_is_empty;
        Alcotest.test_case "cancel after pop" `Quick test_heap_cancel_after_pop;
        Alcotest.test_case "double cancel" `Quick test_heap_double_cancel;
        Alcotest.test_case "pop_le" `Quick test_heap_pop_le;
        Alcotest.test_case "FIFO tie-break" `Quick test_heap_tie_break_fifo;
      ] );
    ( "runner",
      [
        Alcotest.test_case "map preserves order" `Quick test_map_preserves_order;
        Alcotest.test_case "map_list = List.map" `Quick
          test_map_list_matches_sequential;
        Alcotest.test_case "derive_seed pure+distinct" `Quick
          test_derive_seed_pure_and_distinct;
        Alcotest.test_case "seeds independent of scheduling" `Quick
          test_derive_seed_independent_of_completion_order;
        Alcotest.test_case "lowest-index error wins" `Quick
          test_lowest_index_error_wins;
        Alcotest.test_case "jobs=1 inline" `Quick test_jobs_one_inline;
      ] );
    ( "runner.determinism",
      [
        Alcotest.test_case "tables byte-identical jobs 1/2/8" `Slow
          test_tables_byte_identical_across_jobs;
      ] );
  ]
