(* The domain pool (Pcc_experiments.Runner), the event heap's exact live
   count, and the determinism contract: identical output for any --jobs. *)

open Pcc_experiments
module Heap = Pcc_sim.Event_heap

(* ------------------------------------------------------------------ *)
(* Event heap: exact size under cancellation. *)

let test_heap_size_buried_cancel () =
  let h = Heap.create () in
  let handles =
    List.map (fun t -> (t, Heap.push h ~time:t t)) [ 5.; 1.; 4.; 2.; 3. ]
  in
  Alcotest.(check int) "five live" 5 (Heap.size h);
  (* Cancel entries that are NOT at the root (times 4 and 5): they stay
     buried in the arrays but must stop counting immediately. *)
  List.iter (fun (t, han) -> if t >= 4. then Heap.cancel han) handles;
  Alcotest.(check int) "three live after burying two" 3 (Heap.size h);
  Alcotest.(check bool) "not empty" false (Heap.is_empty h);
  (* Pops only surface the live ones, in order. *)
  let order = List.filter_map (fun _ -> Heap.pop h) [ (); (); (); () ] in
  Alcotest.(check (list (pair (float 0.) (float 0.))))
    "live events in time order"
    [ (1., 1.); (2., 2.); (3., 3.) ]
    order;
  Alcotest.(check int) "drained" 0 (Heap.size h);
  Alcotest.(check bool) "empty" true (Heap.is_empty h)

let test_heap_cancel_all_is_empty () =
  let h = Heap.create () in
  let handles = List.init 8 (fun i -> Heap.push h ~time:(float_of_int i) i) in
  List.iter Heap.cancel handles;
  Alcotest.(check int) "size 0 with 8 dead entries stored" 0 (Heap.size h);
  Alcotest.(check bool) "is_empty despite stored entries" true (Heap.is_empty h);
  Alcotest.(check bool) "pop finds nothing" true (Heap.pop h = None)

let test_heap_cancel_after_pop () =
  let h = Heap.create () in
  let a = Heap.push h ~time:1. "a" in
  let _b = Heap.push h ~time:2. "b" in
  Alcotest.(check bool) "popped a" true (Heap.pop h = Some (1., "a"));
  (* Cancelling a's handle after it was popped must not corrupt the
     count of the remaining live entry. *)
  Heap.cancel a;
  Heap.cancel a;
  Alcotest.(check int) "b still counted" 1 (Heap.size h);
  Alcotest.(check bool) "cancelled is false for popped" false (Heap.cancelled a);
  Alcotest.(check bool) "popped b" true (Heap.pop h = Some (2., "b"))

let test_heap_double_cancel () =
  let h = Heap.create () in
  let a = Heap.push h ~time:1. 1 in
  let _b = Heap.push h ~time:2. 2 in
  Heap.cancel a;
  Heap.cancel a;
  Alcotest.(check int) "double cancel decrements once" 1 (Heap.size h)

let test_heap_pop_le () =
  let h = Heap.create () in
  let _ = Heap.push h ~time:1. 1 in
  let h2 = Heap.push h ~time:2. 2 in
  let _ = Heap.push h ~time:3. 3 in
  Alcotest.(check bool) "pop_le below earliest" true
    (Heap.pop_le h ~max_time:0.5 = None);
  Alcotest.(check bool) "pop_le at 2.5 gives 1" true
    (Heap.pop_le h ~max_time:2.5 = Some (1., 1));
  Heap.cancel h2;
  (* The cancelled 2 must be skipped without being returned. *)
  Alcotest.(check bool) "pop_le skips cancelled" true
    (Heap.pop_le h ~max_time:2.5 = None);
  Alcotest.(check int) "only 3 remains" 1 (Heap.size h);
  Alcotest.(check bool) "3 still there" true
    (Heap.pop_le h ~max_time:10. = Some (3., 3))

let test_heap_tie_break_fifo () =
  let h = Heap.create () in
  List.iter (fun v -> ignore (Heap.push h ~time:1. v)) [ "a"; "b"; "c" ];
  let order = List.filter_map (fun _ -> Heap.pop h) [ (); (); () ] in
  Alcotest.(check (list (pair (float 0.) string)))
    "simultaneous events pop in insertion order"
    [ (1., "a"); (1., "b"); (1., "c") ]
    order

(* ------------------------------------------------------------------ *)
(* Runner: order preservation, seeds, errors. *)

(* Burn CPU proportionally to [n] so tasks finish out of submission
   order under real parallelism (and under any scheduling). *)
let busy n =
  let acc = ref 0 in
  for i = 1 to n * 20_000 do
    acc := !acc + (i land 7)
  done;
  Sys.opaque_identity !acc

let test_map_preserves_order () =
  Runner.with_pool ~jobs:4 (fun pool ->
      let n = 32 in
      (* Task i works longest when i is smallest: completion order is
         roughly the reverse of submission order. *)
      let inputs = Array.init n (fun i -> i) in
      let results =
        Runner.map pool
          (fun i ->
            ignore (busy (n - i));
            i * i)
          inputs
      in
      Alcotest.(check (array int))
        "slots in task order regardless of completion order"
        (Array.init n (fun i -> i * i))
        results)

let test_map_list_matches_sequential () =
  let inputs = List.init 50 (fun i -> i) in
  let f i = (i * 7919) mod 1001 in
  let seq = List.map f inputs in
  Runner.with_pool ~jobs:8 (fun pool ->
      Alcotest.(check (list int))
        "map_list = List.map" seq
        (Runner.map_list pool f inputs))

let test_derive_seed_pure_and_distinct () =
  let s = Runner.derive_seed ~master:42 ~index:7 in
  Alcotest.(check int) "deterministic" s
    (Runner.derive_seed ~master:42 ~index:7);
  Alcotest.(check bool) "non-negative" true (s >= 0);
  let seeds =
    List.init 1000 (fun i -> Runner.derive_seed ~master:42 ~index:i)
  in
  let distinct = List.sort_uniq compare seeds in
  Alcotest.(check int) "1000 indices, 1000 distinct seeds" 1000
    (List.length distinct);
  Alcotest.(check bool) "different master, different stream" true
    (Runner.derive_seed ~master:1 ~index:0
    <> Runner.derive_seed ~master:2 ~index:0)

let test_derive_seed_independent_of_completion_order () =
  (* Each task derives its seed inside the task body; delays reverse the
     completion order. The derived seeds must still be exactly the
     sequential ones, slot by slot. *)
  let n = 16 in
  let expected = Array.init n (fun i -> Runner.derive_seed ~master:7 ~index:i) in
  Runner.with_pool ~jobs:4 (fun pool ->
      let got =
        Runner.map pool
          (fun i ->
            ignore (busy (n - i));
            Runner.derive_seed ~master:7 ~index:i)
          (Array.init n (fun i -> i))
      in
      Alcotest.(check (array int))
        "per-task seeds independent of scheduling" expected got)

exception Task_failed of int

let test_lowest_index_error_wins () =
  Runner.with_pool ~jobs:4 (fun pool ->
      let raised =
        try
          ignore
            (Runner.map pool
               (fun i ->
                 ignore (busy (24 - i));
                 (* Index 20 fails fast, index 3 fails slow: the slow,
                    lower-indexed failure must be the one reported. *)
                 if i = 3 || i = 20 then raise (Task_failed i);
                 i)
               (Array.init 24 (fun i -> i)));
          None
        with Task_failed i -> Some i
      in
      Alcotest.(check (option int)) "lowest-indexed exception" (Some 3) raised)

let test_jobs_one_inline () =
  Runner.with_pool ~jobs:1 (fun pool ->
      Alcotest.(check int) "jobs" 1 (Runner.jobs pool);
      Alcotest.(check (list int))
        "inline map works" [ 2; 4; 6 ]
        (Runner.map_list pool (fun x -> 2 * x) [ 1; 2; 3 ]))

(* ------------------------------------------------------------------ *)
(* The determinism contract, end to end: rendered experiment tables are
   byte-identical for --jobs 1/2/8. *)

let rendered_loss ?pool () =
  Exp_common.render_table
    (Exp_loss.table
       (Exp_loss.run ?pool ~scale:0.02 ~seed:11 ~losses:[ 0.0; 0.02 ] ()))

let rendered_game ?pool () =
  Exp_common.render_table
    (Exp_game.table (Exp_game.run ?pool ~seed:11 ~ns:[ 2; 5 ] ()))

let test_tables_byte_identical_across_jobs () =
  let seq_loss = rendered_loss () in
  let seq_game = rendered_game () in
  List.iter
    (fun jobs ->
      Runner.with_pool ~jobs (fun pool ->
          Alcotest.(check string)
            (Printf.sprintf "fig7 subset identical at jobs=%d" jobs)
            seq_loss
            (rendered_loss ~pool ());
          Alcotest.(check string)
            (Printf.sprintf "game identical at jobs=%d" jobs)
            seq_game
            (rendered_game ~pool ())))
    [ 1; 2; 8 ]

(* ------------------------------------------------------------------ *)
(* Supervisor: sweeps survive hangs and crashes with partial results. *)

let temp_dir prefix =
  let f = Filename.temp_file prefix "" in
  Sys.remove f;
  Sys.mkdir f 0o755;
  f

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* An engine that reschedules itself forever: only the in-band Task_guard
   (deadline or event ceiling) gets out of [Engine.run]. *)
let engine_hang () =
  let engine = Pcc_sim.Engine.create () in
  let rec tick () = ignore (Pcc_sim.Engine.schedule_in engine ~after:1e-3 tick) in
  tick ();
  Pcc_sim.Engine.run engine;
  -1

let status_at (r : Supervisor.report) i = r.Supervisor.outcomes.(i).status

let test_gauntlet_partial_results () =
  let dir = temp_dir "pcc-gauntlet" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let tasks =
    [
      Exp_common.task ~label:"ok-before" (fun () -> 10);
      Exp_common.task ~label:"hang" engine_hang;
      Exp_common.task ~label:"crash" ~repro:"pcc_sim exp crash" (fun () ->
          failwith "gauntlet: injected crash");
      Exp_common.task ~label:"ok-after" (fun () -> 20);
    ]
  in
  let policy =
    {
      Supervisor.default_policy with
      jobs = 2;
      deadline = Some 0.3;
      forensics_dir = Some dir;
      forensic_trace = true;
    }
  in
  let results, report = Supervisor.run ~policy tasks in
  Alcotest.(check (list (option int)))
    "healthy tasks complete around the failures"
    [ Some 10; None; None; Some 20 ]
    results;
  Alcotest.(check (list int))
    "counts: total/ok/timed_out/crashed"
    [ 4; 2; 1; 1 ]
    [ report.total; report.ok; report.timed_out; report.crashed ];
  (match status_at report 1 with
  | Supervisor.Timed_out { attempts = 1 } -> ()
  | s -> Alcotest.failf "hang should time out, got %s" (Supervisor.status_name s));
  (match status_at report 2 with
  | Supervisor.Crashed f ->
    Alcotest.(check bool) "crash text recorded" true
      (contains f.Supervisor.exn_text "injected crash")
  | s -> Alcotest.failf "crash should crash, got %s" (Supervisor.status_name s));
  Alcotest.(check bool) "report failed" true (Supervisor.failed report);
  let line = Supervisor.summary_line report in
  Alcotest.(check bool) "summary names the hang" true (contains line "hang");
  Alcotest.(check bool) "summary names the crash" true (contains line "crash");
  (* Both failures leave forensics bundles with a report and a trace. *)
  Array.iter
    (fun (o : Supervisor.outcome) ->
      if Supervisor.is_failure o.status then
        match o.forensics with
        | None -> Alcotest.failf "no forensics bundle for %s" o.label
        | Some d ->
          List.iter
            (fun f ->
              Alcotest.(check bool)
                (Printf.sprintf "%s has %s" o.label f)
                true
                (Sys.file_exists (Filename.concat d f)))
            [ "report.txt"; "trace.json"; "decisions.log" ])
    report.outcomes;
  Supervisor.reset_failures ()

let test_watchdog_abandons_non_engine_hang () =
  (* A spin loop never dispatches engine events, so the in-band guard is
     silent and only the out-of-band watchdog can classify the hang. *)
  let release = Atomic.make false in
  let spinner () =
    while not (Atomic.get release) do
      Domain.cpu_relax ()
    done;
    -1
  in
  let tasks =
    [
      Exp_common.task ~label:"ok-a" (fun () -> 1);
      Exp_common.task ~label:"spin" spinner;
      Exp_common.task ~label:"ok-b" (fun () -> 2);
    ]
  in
  let policy =
    {
      Supervisor.default_policy with
      jobs = 2;
      deadline = Some 0.2;
      grace = 0.2;
      poll = 0.05;
    }
  in
  let results, report = Supervisor.run ~policy tasks in
  (* Unwedge the abandoned domain so the process can exit cleanly. *)
  Atomic.set release true;
  Alcotest.(check (list (option int)))
    "spin abandoned, neighbours complete"
    [ Some 1; None; Some 2 ]
    results;
  (match status_at report 1 with
  | Supervisor.Timed_out _ -> ()
  | s ->
    Alcotest.failf "watchdog should time the spinner out, got %s"
      (Supervisor.status_name s));
  Supervisor.reset_failures ()

let test_retry_then_success () =
  let attempts = Atomic.make 0 in
  let flaky () =
    if Atomic.fetch_and_add attempts 1 < 2 then failwith "flaky" else 42
  in
  let policy =
    {
      Supervisor.default_policy with
      retries = 3;
      backoff = 0.;
      transient = (fun _ -> true);
    }
  in
  let results, report =
    Supervisor.run ~policy [ Exp_common.task ~label:"flaky" flaky ]
  in
  Alcotest.(check (list (option int))) "succeeds eventually" [ Some 42 ] results;
  Alcotest.(check int) "counted as retried, not ok" 1 report.Supervisor.retried;
  Alcotest.(check int) "three attempts ran" 3 (Atomic.get attempts);
  (match status_at report 0 with
  | Supervisor.Completed { retries = 2 } -> ()
  | s -> Alcotest.failf "expected 2 retries, got %s" (Supervisor.status_name s));
  Alcotest.(check int) "both failures kept" 2
    (List.length report.Supervisor.outcomes.(0).Supervisor.failures);
  Alcotest.(check bool) "retried-to-success is not a failure" false
    (Supervisor.failed report)

let test_quarantine_after_retry_exhaustion () =
  let attempts = Atomic.make 0 in
  let doomed () =
    ignore (Atomic.fetch_and_add attempts 1);
    failwith "always down"
  in
  let policy =
    {
      Supervisor.default_policy with
      retries = 2;
      backoff = 0.;
      transient = (fun _ -> true);
    }
  in
  let results, report =
    Supervisor.run ~policy [ Exp_common.task ~label:"doomed" doomed ]
  in
  Alcotest.(check (list (option int))) "no result" [ None ] results;
  Alcotest.(check int) "1 + 2 retries" 3 (Atomic.get attempts);
  (match status_at report 0 with
  | Supervisor.Quarantined { attempts = 3; _ } -> ()
  | s -> Alcotest.failf "expected quarantine, got %s" (Supervisor.status_name s));
  Supervisor.reset_failures ()

let test_timeouts_never_retried () =
  (* Even a policy that declares everything transient must not re-run a
     task that blew its event ceiling: timeouts are deterministic. *)
  let policy =
    {
      Supervisor.default_policy with
      retries = 3;
      backoff = 0.;
      transient = (fun _ -> true);
      max_events = Some 1_000;
    }
  in
  let _, report =
    Supervisor.run ~policy [ Exp_common.task ~label:"hog" engine_hang ]
  in
  (match status_at report 0 with
  | Supervisor.Timed_out { attempts = 1 } -> ()
  | s ->
    Alcotest.failf "ceiling should give one timed-out attempt, got %s"
      (Supervisor.status_name s));
  Supervisor.reset_failures ()

let test_non_transient_crash_not_retried () =
  let attempts = Atomic.make 0 in
  let policy = { Supervisor.default_policy with retries = 3; backoff = 0. } in
  let _, report =
    Supervisor.run ~policy
      [
        Exp_common.task ~label:"fatal" (fun () ->
            ignore (Atomic.fetch_and_add attempts 1);
            failwith "fatal");
      ]
  in
  Alcotest.(check int) "default transient retries nothing" 1
    (Atomic.get attempts);
  (match status_at report 0 with
  | Supervisor.Crashed _ -> ()
  | s -> Alcotest.failf "expected crashed, got %s" (Supervisor.status_name s));
  Supervisor.reset_failures ()

let test_empty_sweep () =
  let results, report = Supervisor.run [] in
  Alcotest.(check int) "no results" 0 (List.length results);
  Alcotest.(check int) "empty report" 0 report.Supervisor.total;
  Alcotest.(check bool) "not failed" false (Supervisor.failed report)

(* Rendered tables are byte-identical whether the sweep runs inline or
   across supervised worker domains. *)
let test_supervised_tables_byte_identical () =
  let render jobs =
    let policy = { Supervisor.default_policy with jobs } in
    Exp_common.render_table
      (Exp_loss.table
         (Exp_loss.run ~policy ~scale:0.02 ~seed:11 ~losses:[ 0.0; 0.02 ] ()))
  in
  let seq = rendered_loss () in
  Alcotest.(check string) "supervised jobs=1 = plain sequential" seq (render 1);
  Alcotest.(check string) "supervised jobs=4 = plain sequential" seq (render 4)

(* A completed task that only succeeded after the shard degradation
   ladder stepped down is accounted as degraded — per task and in the
   sweep totals — while still counting as Completed. *)
let test_degraded_accounting () =
  let module Shard = Pcc_sim.Shard in
  let module Degrade = Pcc_sim.Degrade in
  ignore (Degrade.take_tally ());
  let chaotic () =
    let outcome =
      Degrade.run
        ~plan:(Degrade.plan ~shards:2 ())
        (fun (a : Degrade.attempt) ->
          let hub = Shard.create ~shards:a.Degrade.shards () in
          Shard.configure
            ~chaos:{ Shard.crash = Some (1, 1); wedge = None }
            hub;
          Array.iter
            (fun e -> Pcc_sim.Engine.post e ~at:0.1 (fun () -> ()))
            (Shard.engines hub);
          Shard.run hub ~until:1.0;
          Shard.executed hub)
    in
    List.length outcome.Degrade.steps
  in
  let results, report =
    Supervisor.run
      [
        Exp_common.task ~label:"chaotic" chaotic;
        Exp_common.task ~label:"clean" (fun () -> 0);
      ]
  in
  Alcotest.(check (list (option int)))
    "ladder stepped once, clean task untouched"
    [ Some 1; Some 0 ]
    results;
  Alcotest.(check int) "sweep counts one degraded task" 1
    report.Supervisor.degraded;
  (match report.Supervisor.outcomes.(0) with
  | { Supervisor.status = Supervisor.Completed _; degraded; _ } ->
    Alcotest.(check int) "task records its degradation steps" 1 degraded
  | o ->
    Alcotest.failf "expected completion, got %s"
      (Supervisor.status_name o.Supervisor.status));
  Alcotest.(check int) "clean task undegraded" 0
    report.Supervisor.outcomes.(1).Supervisor.degraded;
  Alcotest.(check bool) "degradation is not failure" false
    (Supervisor.failed report)

(* ------------------------------------------------------------------ *)
(* Checkpoint: versioned frames, truncation tolerance, identity. *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let with_ckpt f =
  let path = Filename.temp_file "pcc-ckpt" ".bin" in
  Fun.protect ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
  @@ fun () -> f path

let test_checkpoint_roundtrip () =
  with_ckpt @@ fun path ->
  let meta =
    { Checkpoint.seed = 7; scale = 0.25; names = [ "fig7"; "fig9" ] }
  in
  let t = Checkpoint.create ~path meta in
  Checkpoint.append t ~name:"fig7" ~output:"table one\nrow \xff\x00 bytes\n";
  Checkpoint.append t ~name:"fig9" ~output:"";
  Checkpoint.close t;
  let m, recs = Checkpoint.load ~path in
  Alcotest.(check bool) "meta matches the sweep" true
    (Checkpoint.matches m ~seed:7 ~scale:0.25 ~names:[ "fig7"; "fig9" ]);
  Alcotest.(check bool) "different seed refused" false
    (Checkpoint.matches m ~seed:8 ~scale:0.25 ~names:[ "fig7"; "fig9" ]);
  Alcotest.(check bool) "different selection refused" false
    (Checkpoint.matches m ~seed:7 ~scale:0.25 ~names:[ "fig7" ]);
  Alcotest.(check (list (pair string string)))
    "records round-trip byte-exactly"
    [ ("fig7", "table one\nrow \xff\x00 bytes\n"); ("fig9", "") ]
    recs

let test_checkpoint_truncation_drops_only_tail () =
  with_ckpt @@ fun path ->
  let meta = { Checkpoint.seed = 1; scale = 1.; names = [ "a"; "b" ] } in
  let t = Checkpoint.create ~path meta in
  Checkpoint.append t ~name:"a" ~output:"first output";
  let after_first = String.length (read_file path) in
  Checkpoint.append t ~name:"b" ~output:"second output";
  Checkpoint.close t;
  let full = read_file path in
  (* Kill the writer anywhere inside the second frame: the first record
     must still load, without an exception. *)
  List.iter
    (fun len ->
      write_file path (String.sub full 0 len);
      let _, recs = Checkpoint.load ~path in
      Alcotest.(check (list (pair string string)))
        (Printf.sprintf "truncated to %d bytes keeps first record" len)
        [ ("a", "first output") ]
        recs)
    [ String.length full - 1; after_first + 3; after_first ];
  (* Truncating into the header frame is corruption, not a clean resume. *)
  write_file path (String.sub full 0 4);
  Alcotest.(check bool) "header torn -> Corrupt" true
    (match Checkpoint.load ~path with
    | _ -> false
    | exception Pcc_sim.Persist.Corrupt _ -> true)

let test_checkpoint_rejects_foreign_file () =
  with_ckpt @@ fun path ->
  write_file path "not a checkpoint at all, just prose long enough to read";
  Alcotest.(check bool) "bad magic -> Corrupt" true
    (match Checkpoint.load ~path with
    | _ -> false
    | exception Pcc_sim.Persist.Corrupt _ -> true)

let suites =
  [
    ( "event_heap.live_count",
      [
        Alcotest.test_case "buried cancellations" `Quick
          test_heap_size_buried_cancel;
        Alcotest.test_case "cancel all -> empty" `Quick
          test_heap_cancel_all_is_empty;
        Alcotest.test_case "cancel after pop" `Quick test_heap_cancel_after_pop;
        Alcotest.test_case "double cancel" `Quick test_heap_double_cancel;
        Alcotest.test_case "pop_le" `Quick test_heap_pop_le;
        Alcotest.test_case "FIFO tie-break" `Quick test_heap_tie_break_fifo;
      ] );
    ( "runner",
      [
        Alcotest.test_case "map preserves order" `Quick test_map_preserves_order;
        Alcotest.test_case "map_list = List.map" `Quick
          test_map_list_matches_sequential;
        Alcotest.test_case "derive_seed pure+distinct" `Quick
          test_derive_seed_pure_and_distinct;
        Alcotest.test_case "seeds independent of scheduling" `Quick
          test_derive_seed_independent_of_completion_order;
        Alcotest.test_case "lowest-index error wins" `Quick
          test_lowest_index_error_wins;
        Alcotest.test_case "jobs=1 inline" `Quick test_jobs_one_inline;
      ] );
    ( "runner.determinism",
      [
        Alcotest.test_case "tables byte-identical jobs 1/2/8" `Slow
          test_tables_byte_identical_across_jobs;
      ] );
    ( "supervisor",
      [
        Alcotest.test_case "gauntlet: hang+crash, partial results" `Quick
          test_gauntlet_partial_results;
        Alcotest.test_case "watchdog abandons non-engine hang" `Quick
          test_watchdog_abandons_non_engine_hang;
        Alcotest.test_case "retry then success" `Quick test_retry_then_success;
        Alcotest.test_case "quarantine on retry exhaustion" `Quick
          test_quarantine_after_retry_exhaustion;
        Alcotest.test_case "timeouts never retried" `Quick
          test_timeouts_never_retried;
        Alcotest.test_case "non-transient crash not retried" `Quick
          test_non_transient_crash_not_retried;
        Alcotest.test_case "empty sweep" `Quick test_empty_sweep;
        Alcotest.test_case "degraded ladder accounting" `Quick
          test_degraded_accounting;
        Alcotest.test_case "supervised tables byte-identical jobs 1/4" `Slow
          test_supervised_tables_byte_identical;
      ] );
    ( "checkpoint",
      [
        Alcotest.test_case "roundtrip + identity" `Quick
          test_checkpoint_roundtrip;
        Alcotest.test_case "truncation drops only the torn tail" `Quick
          test_checkpoint_truncation_drops_only_tail;
        Alcotest.test_case "foreign file rejected" `Quick
          test_checkpoint_rejects_foreign_file;
      ] );
  ]
