(* Entry point aggregating every suite; `dune runtest` runs them all. *)

let () =
  Alcotest.run "pcc_repro"
    (Test_sim.suites @ Test_sched.suites @ Test_net.suites @ Test_queue.suites @ Test_tcp.suites
   @ Test_rate_transports.suites @ Test_pcc.suites @ Test_utility.suites
   @ Test_controllers.suites @ Test_game.suites @ Test_metrics.suites @ Test_scenario.suites
   @ Test_persist.suites @ Test_fuzz.suites
   @ Test_multihop.suites @ Test_topology.suites @ Test_robustness.suites
   @ Test_fault.suites
   @ Test_experiments.suites @ Test_runner.suites @ Test_trace.suites
   @ Test_shard.suites)
