open Pcc_sim
open Pcc_scenario

(* Integration tests of the paper's headline behaviours, scaled down.

   Every topology these tests build runs under the runtime invariant
   checker by default — a violation raises inside the engine and fails
   the test. Set PCC_TEST_INVARIANTS=0 to opt out (e.g. when bisecting
   a violation interactively). *)

let invariants_enabled =
  match Sys.getenv_opt "PCC_TEST_INVARIANTS" with
  | Some ("0" | "off" | "false") -> false
  | _ -> true

let watch path = if invariants_enabled then ignore (Invariant.attach_path path)

let goodput_mbps f duration =
  float_of_int (Path.goodput_bytes f * 8) /. duration /. 1e6

let test_pcc_fills_clean_link () =
  let engine = Engine.create () in
  let rng = Rng.create 42 in
  let path =
    Path.build engine ~rng ~bandwidth:(Units.mbps 100.) ~rtt:0.03
      ~buffer:(Units.bdp_bytes ~rate:(Units.mbps 100.) ~rtt:0.03)
      ~flows:[ Path.flow (Transport.pcc ()) ]
      ()
  in
  watch path;
  Engine.run ~until:20. engine;
  let f = (Path.flows path).(0) in
  Alcotest.(check bool) "above 80 Mbps average incl. startup" true
    (goodput_mbps f 20. > 80.)

let test_pcc_beats_cubic_on_lossy_link () =
  let run spec =
    let engine = Engine.create () in
    let rng = Rng.create 42 in
    let path =
      Path.build engine ~rng ~bandwidth:(Units.mbps 100.) ~rtt:0.03
        ~buffer:(Units.bdp_bytes ~rate:(Units.mbps 100.) ~rtt:0.03)
        ~loss:0.01
        ~flows:[ Path.flow spec ]
        ()
    in
    watch path;
    Engine.run ~until:30. engine;
    goodput_mbps (Path.flows path).(0) 30.
  in
  let pcc = run (Transport.pcc ()) in
  let cubic = run (Transport.tcp "cubic") in
  Alcotest.(check bool) "PCC >= 5x CUBIC at 1% loss" true (pcc > 5. *. cubic)

let test_pcc_shallow_buffer () =
  let engine = Engine.create () in
  let rng = Rng.create 42 in
  (* 6 MSS of buffer — the paper's 90%-of-capacity point. *)
  let path =
    Path.build engine ~rng ~bandwidth:(Units.mbps 100.) ~rtt:0.03
      ~buffer:(6 * Units.mss)
      ~flows:[ Path.flow (Transport.pcc ()) ]
      ()
  in
  watch path;
  Engine.run ~until:20. engine;
  Alcotest.(check bool) "90% capacity on 6-packet buffer" true
    (goodput_mbps (Path.flows path).(0) 20. > 80.)

let test_two_pcc_flows_converge_fair () =
  let engine = Engine.create () in
  let rng = Rng.create 5 in
  let path =
    Path.build engine ~rng ~bandwidth:(Units.mbps 100.) ~rtt:0.03
      ~buffer:(Units.bdp_bytes ~rate:(Units.mbps 100.) ~rtt:0.03)
      ~flows:[ Path.flow (Transport.pcc ()); Path.flow (Transport.pcc ()) ]
      ()
  in
  watch path;
  (* Both start together: convergence is fast; measure the last 30 s. *)
  Engine.run ~until:30. engine;
  let f = Path.flows path in
  let b0 = Array.map Path.goodput_bytes f in
  Engine.run ~until:60. engine;
  let share i = float_of_int (Path.goodput_bytes f.(i) - b0.(i)) in
  let jain = Pcc_metrics.Stats.jain_index [| share 0; share 1 |] in
  Alcotest.(check bool) "fair split" true (jain > 0.95);
  Alcotest.(check bool) "link utilized" true
    ((share 0 +. share 1) *. 8. /. 30. > Units.mbps 80.)

let test_pcc_rtt_fairness_beats_newreno () =
  let ratio spec =
    let engine = Engine.create () in
    let rng = Rng.create 9 in
    let path =
      Path.build engine ~rng ~bandwidth:(Units.mbps 100.) ~rtt:0.01
        ~buffer:(Units.bdp_bytes ~rate:(Units.mbps 100.) ~rtt:0.01)
        ~flows:
          [
            Path.flow ~extra_rtt:0.07 spec (* 80 ms flow *);
            Path.flow ~start_at:2. spec (* 10 ms flow *);
          ]
        ()
    in
    watch path;
    Engine.run ~until:20. engine;
    let f = Path.flows path in
    let b0 = Array.map Path.goodput_bytes f in
    Engine.run ~until:60. engine;
    let d i = float_of_int (Path.goodput_bytes f.(i) - b0.(i)) in
    d 0 /. Float.max (d 1) 1.
  in
  let pcc = ratio (Transport.pcc ()) in
  let reno = ratio (Transport.tcp "newreno") in
  Alcotest.(check bool) "PCC closer to fair than Reno" true (pcc > reno);
  Alcotest.(check bool) "PCC above half share" true (pcc > 0.5)

let test_flow_scheduling_and_fct () =
  let engine = Engine.create () in
  let rng = Rng.create 3 in
  let path =
    Path.build engine ~rng ~bandwidth:(Units.mbps 10.) ~rtt:0.02
      ~buffer:(Units.kib 64)
      ~flows:
        [
          Path.flow ~start_at:1. ~size:(100 * Units.mss) (Transport.tcp "newreno");
        ]
      ()
  in
  watch path;
  Engine.run ~until:0.5 engine;
  let f = (Path.flows path).(0) in
  Alcotest.(check int) "nothing before start" 0
    (f.Path.sender.Pcc_net.Sender.sent_pkts ());
  Engine.run ~until:10. engine;
  (match f.Path.fct with
  | Some fct ->
    (* 100 MSS at 10 Mbps is ~0.12 s of wire time plus slow start. *)
    Alcotest.(check bool) "fct sane" true (fct > 0.12 && fct < 5.)
  | None -> Alcotest.fail "fct not recorded");
  Alcotest.(check bool) "complete" true
    (f.Path.sender.Pcc_net.Sender.is_complete ())

let test_set_base_rtt_applies () =
  let engine = Engine.create () in
  let rng = Rng.create 3 in
  let path =
    Path.build engine ~rng ~bandwidth:(Units.mbps 10.) ~rtt:0.02
      ~buffer:(Units.kib 64)
      ~flows:[ Path.flow (Transport.tcp "newreno") ]
      ()
  in
  watch path;
  Path.set_base_rtt path 0.2;
  Engine.run ~until:5. engine;
  let f = (Path.flows path).(0) in
  Alcotest.(check bool) "srtt reflects new base rtt" true
    (f.Path.sender.Pcc_net.Sender.srtt () > 0.15)

let test_internet_model_params_in_range () =
  let rng = Rng.create 77 in
  for _ = 1 to 200 do
    let p = Internet_model.random rng in
    Alcotest.(check bool) "bw range" true
      (p.Internet_model.bandwidth >= Units.mbps 10.
      && p.Internet_model.bandwidth <= Units.mbps 500.);
    Alcotest.(check bool) "rtt range" true
      (p.Internet_model.rtt >= 0.01 && p.Internet_model.rtt <= 0.3);
    Alcotest.(check bool) "loss range" true
      (p.Internet_model.loss >= 0. && p.Internet_model.loss <= 0.01);
    Alcotest.(check bool) "buffer positive" true (p.Internet_model.buffer > 0)
  done

let test_internet_model_measure_runs () =
  let rng = Rng.create 78 in
  let p = Internet_model.random rng in
  let tput =
    Internet_model.measure ~duration:5. ~seed:1 p (Transport.tcp "newreno")
  in
  Alcotest.(check bool) "positive throughput" true (tput > 0.);
  Alcotest.(check bool) "below capacity" true
    (tput <= p.Internet_model.bandwidth);
  (* Same seed, same params: deterministic. *)
  let tput2 =
    Internet_model.measure ~duration:5. ~seed:1 p (Transport.tcp "newreno")
  in
  Alcotest.(check (float 1.)) "deterministic" tput tput2

let test_transport_names () =
  Alcotest.(check string) "pcc" "pcc/safe" (Transport.name (Transport.pcc ()));
  Alcotest.(check string) "tcp" "cubic" (Transport.name (Transport.tcp "cubic"));
  Alcotest.(check string) "paced" "newreno+pacing"
    (Transport.name (Transport.tcp_paced "newreno"));
  Alcotest.(check string) "sabul" "sabul" (Transport.name Transport.sabul);
  Alcotest.(check string) "pcp" "pcp" (Transport.name Transport.pcp)

let suites =
  [
    ( "scenario.integration",
      [
        Alcotest.test_case "pcc fills clean link" `Slow test_pcc_fills_clean_link;
        Alcotest.test_case "pcc beats cubic on loss" `Slow
          test_pcc_beats_cubic_on_lossy_link;
        Alcotest.test_case "pcc shallow buffer" `Slow test_pcc_shallow_buffer;
        Alcotest.test_case "two pcc flows fair" `Slow
          test_two_pcc_flows_converge_fair;
        Alcotest.test_case "rtt fairness" `Slow
          test_pcc_rtt_fairness_beats_newreno;
        Alcotest.test_case "flow scheduling and fct" `Quick
          test_flow_scheduling_and_fct;
        Alcotest.test_case "set base rtt" `Quick test_set_base_rtt_applies;
      ] );
    ( "scenario.internet_model",
      [
        Alcotest.test_case "params in range" `Quick
          test_internet_model_params_in_range;
        Alcotest.test_case "measure runs" `Slow test_internet_model_measure_runs;
      ] );
    ( "scenario.transport",
      [ Alcotest.test_case "names" `Quick test_transport_names ] );
  ]
