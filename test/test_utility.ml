open Pcc_core

let metrics ?(rate = 10e6) ?(throughput = 10e6) ?(loss = 0.) ?(samples = 1000)
    ?(avg_rtt = 0.03) ?(prev_avg_rtt = 0.03) ?(rtt_early = 0.03)
    ?(rtt_late = 0.03) ?min_rtt ?rtt_samples ?(prev_class = -1) () =
  Utility.
    {
      rate;
      throughput;
      loss;
      samples;
      avg_rtt;
      prev_avg_rtt;
      rtt_early;
      rtt_late;
      min_rtt = Option.value min_rtt ~default:avg_rtt;
      rtt_samples = Option.value rtt_samples ~default:samples;
      prev_class;
    }

let eval u m = u.Utility.eval m

let test_safe_rewards_throughput () =
  let u = Utility.safe () in
  let lo = eval u (metrics ~rate:10e6 ~throughput:10e6 ()) in
  let hi = eval u (metrics ~rate:20e6 ~throughput:20e6 ()) in
  Alcotest.(check bool) "more goodput is better" true (hi > lo)

let test_safe_loss_cap_bites () =
  let u = Utility.safe () in
  let ok = eval u (metrics ~loss:0.02 ~throughput:9.8e6 ()) in
  let bad = eval u (metrics ~loss:0.10 ~throughput:9e6 ()) in
  Alcotest.(check bool) "under the cap positive" true (ok > 0.);
  Alcotest.(check bool) "over the cap negative" true (bad < 0.);
  Alcotest.(check bool) "cliff" true (ok > 10. *. Float.abs bad /. 10.)

let test_safe_conservative_small_samples () =
  let conservative = Utility.safe () in
  let literal = Utility.safe ~conservative:false () in
  (* One drop in 11 packets: raw loss 9.1%. *)
  let m = metrics ~loss:0.091 ~samples:11 ~throughput:9.1e6 () in
  Alcotest.(check bool) "literal trips the cliff" true (eval literal m < 0.);
  Alcotest.(check bool) "confidence bound does not" true
    (eval conservative m > 0.);
  (* At large samples the two agree. *)
  let m_big = metrics ~loss:0.091 ~samples:100000 ~throughput:9.1e6 () in
  Alcotest.(check bool) "large-sample agreement" true
    (Float.abs (eval conservative m_big -. eval literal m_big)
    < 0.05 *. Float.abs (eval literal m_big) +. 0.2)

let test_safe_congestion_prefers_lower_rate () =
  (* Above capacity: L = 1 - C/x; utility must favour the lower rate. *)
  let u = Utility.safe () in
  let c = 100e6 in
  let at x =
    let l = 1. -. (c /. x) in
    eval u (metrics ~rate:x ~throughput:(x *. (1. -. l)) ~loss:l ())
  in
  Alcotest.(check bool) "congestion punished" true (at 110e6 < at 105e6)

let test_loss_resilient_ignores_heavy_loss () =
  let u = Utility.loss_resilient () in
  let at_half_loss =
    eval u (metrics ~rate:100e6 ~throughput:50e6 ~loss:0.5 ())
  in
  let at_low_rate = eval u (metrics ~rate:10e6 ~throughput:5e6 ~loss:0.5 ()) in
  Alcotest.(check bool) "push through 50% loss" true
    (at_half_loss > at_low_rate)

let test_latency_penalizes_rtt_growth () =
  let u = Utility.latency () in
  let stable = eval u (metrics ~rtt_early:0.03 ~rtt_late:0.03 ()) in
  let growing = eval u (metrics ~rtt_early:0.03 ~rtt_late:0.04 ()) in
  let shrinking = eval u (metrics ~rtt_early:0.04 ~rtt_late:0.03 ()) in
  Alcotest.(check bool) "growth punished" true (growing < stable);
  Alcotest.(check bool) "drain rewarded" true (shrinking > stable)

let test_latency_prefers_low_rtt_level () =
  let u = Utility.latency () in
  let low = eval u (metrics ~avg_rtt:0.02 ()) in
  let high = eval u (metrics ~avg_rtt:0.2 ()) in
  Alcotest.(check bool) "level matters" true (low > high)

let test_simple_utility () =
  let u = Utility.simple () in
  Alcotest.(check (float 1e-9)) "T - xL"
    ((10e6 /. 1e6) -. (10e6 /. 1e6 *. 0.1))
    (eval u (metrics ~loss:0.1 ()))

let test_vivace_properties () =
  let u = Utility.vivace () in
  (* Concave growth in rate at zero loss and flat RTT. Concavity must be
     checked over equal-width rate steps — unequal intervals can order the
     differences either way even for a genuinely concave x^0.9. *)
  let at x = eval u (metrics ~rate:(x *. 1e6) ~throughput:(x *. 1e6) ()) in
  Alcotest.(check bool) "monotone" true (at 100. > at 50. && at 50. > at 10.);
  Alcotest.(check bool) "concave" true
    (at 90. -. at 50. < at 50. -. at 10.);
  (* RTT growth within the MI is penalized; draining is never rewarded
     beyond the plain rate term. *)
  let grow = eval u (metrics ~rtt_early:0.03 ~rtt_late:0.05 ()) in
  let flat = eval u (metrics ()) in
  let drain = eval u (metrics ~rtt_early:0.05 ~rtt_late:0.03 ()) in
  Alcotest.(check bool) "growth punished" true (grow < flat);
  Alcotest.(check (float 1e-9)) "drain clamped" flat drain;
  (* Loss scales with the rate. *)
  Alcotest.(check bool) "loss punished" true
    (eval u (metrics ~loss:0.1 ~throughput:9e6 ()) < flat)

(* A congested MI: within-MI RTT slope well above the scavenger's
   default 0.005 s/s trigger ((0.032-0.03)/(0.5*0.03*2.2) ≈ 0.06). *)
let congested ?(prev_class = -1) () =
  metrics ~rtt_late:0.032 ~prev_class ()

let clean ?(prev_class = -1) () = metrics ~prev_class ()

let test_proteus_scavenger_entry_debounce () =
  let u = Utility.proteus_scavenger () in
  let classify = Option.get u.Utility.classify in
  let probe = Utility.class_probe in
  (* One congested MI: suspect, not yet a yield. *)
  let s1 = classify (congested ~prev_class:probe ()) in
  Alcotest.(check bool) "one congested MI makes a suspect" true
    (s1 > probe && s1 < Utility.class_yield);
  (* A second congested MI confirms. *)
  Alcotest.(check bool) "second congested MI confirms the yield" true
    (classify (congested ~prev_class:s1 ()) >= Utility.class_yield);
  (* The grace window: one clean MI decays the suspect without clearing
     it (the -ε probe half of a pair at a saturated link reads clean),
     and the next congested MI still confirms. *)
  let stale = classify (clean ~prev_class:s1 ()) in
  Alcotest.(check int) "one clean MI decays fresh to stale"
    Utility.class_suspect stale;
  Alcotest.(check bool) "still confirms from a stale suspect" true
    (classify (congested ~prev_class:stale ()) >= Utility.class_yield);
  (* Two clean MIs clear the suspicion entirely. *)
  Alcotest.(check int) "two clean MIs decay to probe" probe
    (classify (clean ~prev_class:stale ()))

let test_proteus_scavenger_exit_countdown () =
  let u = Utility.proteus_scavenger () in
  let classify = Option.get u.Utility.classify in
  let s1 = classify (congested ~prev_class:Utility.class_probe ()) in
  let hi = classify (congested ~prev_class:s1 ()) in
  (* Clean MIs count the yield down one class per MI until probing
     resumes. *)
  let rec drain c n =
    if c >= Utility.class_yield then
      drain (classify (clean ~prev_class:c ())) (n + 1)
    else (c, n)
  in
  let final, steps = drain hi 0 in
  Alcotest.(check int) "countdown ends at probe" Utility.class_probe final;
  Alcotest.(check bool) "exit needs a multi-MI clean streak" true (steps >= 3);
  (* Any hot MI resets the countdown to the top... *)
  let mid = classify (clean ~prev_class:hi ()) in
  Alcotest.(check int) "clean MI decrements" (hi - 1) mid;
  Alcotest.(check int) "congested MI resets the countdown" hi
    (classify (congested ~prev_class:mid ()));
  (* ...including a standing queue with a flat RTT slope (a primary
     parked at the bottleneck): avg RTT elevated over the lifetime
     minimum, with real samples behind it. *)
  Alcotest.(check int) "standing queue pins the yield" hi
    (classify
       (metrics ~avg_rtt:0.05 ~rtt_early:0.05 ~rtt_late:0.05 ~min_rtt:0.03
          ~prev_class:mid ()));
  (* ...but estimator fallbacks do not pin: with zero RTT samples in the
     MI (Karn's rule during a retransmission storm) the elevated avg is
     a frozen guess, and the countdown must keep moving. *)
  Alcotest.(check int) "Karn fallback does not pin" (mid - 1)
    (classify
       (metrics ~avg_rtt:0.05 ~rtt_early:0.05 ~rtt_late:0.05 ~min_rtt:0.03
          ~rtt_samples:0 ~prev_class:mid ()))

let test_proteus_yield_objective_shape () =
  let u = Utility.proteus_scavenger () in
  let yielding rate =
    (* prev_class at the countdown top + still congested: the yield
       objective is in force. *)
    eval u (metrics ~rate ~throughput:rate ~rtt_late:0.032 ~prev_class:8 ())
  in
  Alcotest.(check bool) "decreasing in rate above the floor" true
    (yielding 10e6 > yielding 20e6 && yielding 20e6 > yielding 30e6);
  Alcotest.(check (float 1e-9)) "flat below the 2 Mbps floor"
    (yielding 1e6) (yielding 2e6);
  (* While probing, the scavenger is plain Vivace. *)
  let viv = Utility.vivace () in
  Alcotest.(check (float 1e-9)) "probe class evaluates as Vivace"
    (eval viv (clean ())) (eval u (clean ()))

let test_proteus_primary_presses_through_queueing () =
  (* The class ordering that makes Proteus work: queue growth that turns
     Vivace's utility negative leaves the primary's positive, so the
     primary keeps pressing exactly where a scavenger (or plain Vivace)
     backs off. *)
  let m = metrics ~rate:20e6 ~throughput:20e6 ~rtt_late:0.032 () in
  Alcotest.(check bool) "vivace cedes" true (eval (Utility.vivace ()) m < 0.);
  Alcotest.(check bool) "primary presses" true
    (eval (Utility.proteus_primary ()) m > 0.)

let test_proteus_hybrid_floor () =
  let u = Utility.proteus_hybrid () in
  let classify = Option.get u.Utility.classify in
  (* Below the floor rate the hybrid acts as a primary: probe class and
     a positive utility even under the congestion signal. *)
  Alcotest.(check int) "below the floor: probe class" Utility.class_probe
    (classify (metrics ~rate:1e6 ~throughput:1e6 ~rtt_late:0.032 ~prev_class:8 ()));
  Alcotest.(check bool) "below the floor: presses like a primary" true
    (eval u (metrics ~rate:1e6 ~throughput:1e6 ~rtt_late:0.032 ()) > 0.);
  (* Above it, the scavenger machinery is live: a congested MI on a
     suspect flow confirms the yield. *)
  Alcotest.(check bool) "above the floor: scavenger confirm" true
    (classify
       (metrics ~rate:10e6 ~throughput:10e6 ~rtt_late:0.032
          ~prev_class:Utility.class_suspect ())
    >= Utility.class_yield)

let test_custom_utility () =
  let u = Utility.custom ~name:"const" (fun _ -> 42.) in
  Alcotest.(check string) "name" "const" u.Utility.name;
  Alcotest.(check (float 0.)) "eval" 42. (eval u (metrics ()))

let prop_safe_monotone_in_throughput =
  QCheck.Test.make ~name:"safe utility monotone in throughput at fixed loss"
    ~count:300
    QCheck.(triple (float_range 1. 100.) (float_range 0. 0.04) (float_range 1.01 2.))
    (fun (mbps, loss, factor) ->
      let u = Utility.safe () in
      let m1 = metrics ~rate:(mbps *. 1e6) ~throughput:(mbps *. 1e6) ~loss () in
      let m2 =
        metrics
          ~rate:(mbps *. factor *. 1e6)
          ~throughput:(mbps *. factor *. 1e6)
          ~loss ()
      in
      eval u m2 > eval u m1)

let prop_loss_lcb_bounded =
  QCheck.Test.make ~name:"safe utility bounded by throughput" ~count:300
    QCheck.(pair (float_range 0. 200.) (float_range 0. 1.))
    (fun (mbps, loss) ->
      let u = Utility.safe () in
      let m =
        metrics ~rate:(mbps *. 1e6)
          ~throughput:(mbps *. 1e6 *. (1. -. loss))
          ~loss ()
      in
      eval u m <= mbps +. 1e-6)

let q = QCheck_alcotest.to_alcotest

let suites =
  [
    ( "pcc.utility",
      [
        Alcotest.test_case "rewards throughput" `Quick test_safe_rewards_throughput;
        Alcotest.test_case "loss cap" `Quick test_safe_loss_cap_bites;
        Alcotest.test_case "small-sample confidence" `Quick
          test_safe_conservative_small_samples;
        Alcotest.test_case "congestion gradient" `Quick
          test_safe_congestion_prefers_lower_rate;
        Alcotest.test_case "loss resilient" `Quick
          test_loss_resilient_ignores_heavy_loss;
        Alcotest.test_case "latency gradient" `Quick
          test_latency_penalizes_rtt_growth;
        Alcotest.test_case "latency level" `Quick test_latency_prefers_low_rtt_level;
        Alcotest.test_case "simple" `Quick test_simple_utility;
        Alcotest.test_case "vivace" `Quick test_vivace_properties;
        Alcotest.test_case "proteus entry debounce" `Quick
          test_proteus_scavenger_entry_debounce;
        Alcotest.test_case "proteus exit countdown" `Quick
          test_proteus_scavenger_exit_countdown;
        Alcotest.test_case "proteus yield objective" `Quick
          test_proteus_yield_objective_shape;
        Alcotest.test_case "proteus primary aggressiveness" `Quick
          test_proteus_primary_presses_through_queueing;
        Alcotest.test_case "proteus hybrid floor" `Quick
          test_proteus_hybrid_floor;
        Alcotest.test_case "custom" `Quick test_custom_utility;
        q prop_safe_monotone_in_throughput;
        q prop_loss_lcb_bounded;
      ] );
  ]
