open Pcc_core

let metrics ?(rate = 10e6) ?(throughput = 10e6) ?(loss = 0.) ?(samples = 1000)
    ?(avg_rtt = 0.03) ?(prev_avg_rtt = 0.03) ?(rtt_early = 0.03)
    ?(rtt_late = 0.03) () =
  Utility.
    { rate; throughput; loss; samples; avg_rtt; prev_avg_rtt; rtt_early; rtt_late }

let eval u m = u.Utility.eval m

let test_safe_rewards_throughput () =
  let u = Utility.safe () in
  let lo = eval u (metrics ~rate:10e6 ~throughput:10e6 ()) in
  let hi = eval u (metrics ~rate:20e6 ~throughput:20e6 ()) in
  Alcotest.(check bool) "more goodput is better" true (hi > lo)

let test_safe_loss_cap_bites () =
  let u = Utility.safe () in
  let ok = eval u (metrics ~loss:0.02 ~throughput:9.8e6 ()) in
  let bad = eval u (metrics ~loss:0.10 ~throughput:9e6 ()) in
  Alcotest.(check bool) "under the cap positive" true (ok > 0.);
  Alcotest.(check bool) "over the cap negative" true (bad < 0.);
  Alcotest.(check bool) "cliff" true (ok > 10. *. Float.abs bad /. 10.)

let test_safe_conservative_small_samples () =
  let conservative = Utility.safe () in
  let literal = Utility.safe ~conservative:false () in
  (* One drop in 11 packets: raw loss 9.1%. *)
  let m = metrics ~loss:0.091 ~samples:11 ~throughput:9.1e6 () in
  Alcotest.(check bool) "literal trips the cliff" true (eval literal m < 0.);
  Alcotest.(check bool) "confidence bound does not" true
    (eval conservative m > 0.);
  (* At large samples the two agree. *)
  let m_big = metrics ~loss:0.091 ~samples:100000 ~throughput:9.1e6 () in
  Alcotest.(check bool) "large-sample agreement" true
    (Float.abs (eval conservative m_big -. eval literal m_big)
    < 0.05 *. Float.abs (eval literal m_big) +. 0.2)

let test_safe_congestion_prefers_lower_rate () =
  (* Above capacity: L = 1 - C/x; utility must favour the lower rate. *)
  let u = Utility.safe () in
  let c = 100e6 in
  let at x =
    let l = 1. -. (c /. x) in
    eval u (metrics ~rate:x ~throughput:(x *. (1. -. l)) ~loss:l ())
  in
  Alcotest.(check bool) "congestion punished" true (at 110e6 < at 105e6)

let test_loss_resilient_ignores_heavy_loss () =
  let u = Utility.loss_resilient () in
  let at_half_loss =
    eval u (metrics ~rate:100e6 ~throughput:50e6 ~loss:0.5 ())
  in
  let at_low_rate = eval u (metrics ~rate:10e6 ~throughput:5e6 ~loss:0.5 ()) in
  Alcotest.(check bool) "push through 50% loss" true
    (at_half_loss > at_low_rate)

let test_latency_penalizes_rtt_growth () =
  let u = Utility.latency () in
  let stable = eval u (metrics ~rtt_early:0.03 ~rtt_late:0.03 ()) in
  let growing = eval u (metrics ~rtt_early:0.03 ~rtt_late:0.04 ()) in
  let shrinking = eval u (metrics ~rtt_early:0.04 ~rtt_late:0.03 ()) in
  Alcotest.(check bool) "growth punished" true (growing < stable);
  Alcotest.(check bool) "drain rewarded" true (shrinking > stable)

let test_latency_prefers_low_rtt_level () =
  let u = Utility.latency () in
  let low = eval u (metrics ~avg_rtt:0.02 ()) in
  let high = eval u (metrics ~avg_rtt:0.2 ()) in
  Alcotest.(check bool) "level matters" true (low > high)

let test_simple_utility () =
  let u = Utility.simple () in
  Alcotest.(check (float 1e-9)) "T - xL"
    ((10e6 /. 1e6) -. (10e6 /. 1e6 *. 0.1))
    (eval u (metrics ~loss:0.1 ()))

let test_vivace_properties () =
  let u = Utility.vivace () in
  (* Concave growth in rate at zero loss and flat RTT. Concavity must be
     checked over equal-width rate steps — unequal intervals can order the
     differences either way even for a genuinely concave x^0.9. *)
  let at x = eval u (metrics ~rate:(x *. 1e6) ~throughput:(x *. 1e6) ()) in
  Alcotest.(check bool) "monotone" true (at 100. > at 50. && at 50. > at 10.);
  Alcotest.(check bool) "concave" true
    (at 90. -. at 50. < at 50. -. at 10.);
  (* RTT growth within the MI is penalized; draining is never rewarded
     beyond the plain rate term. *)
  let grow = eval u (metrics ~rtt_early:0.03 ~rtt_late:0.05 ()) in
  let flat = eval u (metrics ()) in
  let drain = eval u (metrics ~rtt_early:0.05 ~rtt_late:0.03 ()) in
  Alcotest.(check bool) "growth punished" true (grow < flat);
  Alcotest.(check (float 1e-9)) "drain clamped" flat drain;
  (* Loss scales with the rate. *)
  Alcotest.(check bool) "loss punished" true
    (eval u (metrics ~loss:0.1 ~throughput:9e6 ()) < flat)

let test_custom_utility () =
  let u = Utility.custom ~name:"const" (fun _ -> 42.) in
  Alcotest.(check string) "name" "const" u.Utility.name;
  Alcotest.(check (float 0.)) "eval" 42. (eval u (metrics ()))

let prop_safe_monotone_in_throughput =
  QCheck.Test.make ~name:"safe utility monotone in throughput at fixed loss"
    ~count:300
    QCheck.(triple (float_range 1. 100.) (float_range 0. 0.04) (float_range 1.01 2.))
    (fun (mbps, loss, factor) ->
      let u = Utility.safe () in
      let m1 = metrics ~rate:(mbps *. 1e6) ~throughput:(mbps *. 1e6) ~loss () in
      let m2 =
        metrics
          ~rate:(mbps *. factor *. 1e6)
          ~throughput:(mbps *. factor *. 1e6)
          ~loss ()
      in
      eval u m2 > eval u m1)

let prop_loss_lcb_bounded =
  QCheck.Test.make ~name:"safe utility bounded by throughput" ~count:300
    QCheck.(pair (float_range 0. 200.) (float_range 0. 1.))
    (fun (mbps, loss) ->
      let u = Utility.safe () in
      let m =
        metrics ~rate:(mbps *. 1e6)
          ~throughput:(mbps *. 1e6 *. (1. -. loss))
          ~loss ()
      in
      eval u m <= mbps +. 1e-6)

let q = QCheck_alcotest.to_alcotest

let suites =
  [
    ( "pcc.utility",
      [
        Alcotest.test_case "rewards throughput" `Quick test_safe_rewards_throughput;
        Alcotest.test_case "loss cap" `Quick test_safe_loss_cap_bites;
        Alcotest.test_case "small-sample confidence" `Quick
          test_safe_conservative_small_samples;
        Alcotest.test_case "congestion gradient" `Quick
          test_safe_congestion_prefers_lower_rate;
        Alcotest.test_case "loss resilient" `Quick
          test_loss_resilient_ignores_heavy_loss;
        Alcotest.test_case "latency gradient" `Quick
          test_latency_penalizes_rtt_growth;
        Alcotest.test_case "latency level" `Quick test_latency_prefers_low_rtt_level;
        Alcotest.test_case "simple" `Quick test_simple_utility;
        Alcotest.test_case "vivace" `Quick test_vivace_properties;
        Alcotest.test_case "custom" `Quick test_custom_utility;
        q prop_safe_monotone_in_throughput;
        q prop_loss_lcb_bounded;
      ] );
  ]
